#include "baselines/mkgformer.h"

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace crossem {
namespace baselines {

class MkgFormerBaseline::Model : public nn::Module {
 public:
  Model(const MkgFormerConfig& cfg, int64_t vocab_size, int64_t patch_dim,
        Rng* rng)
      : cfg_(cfg),
        tokens_(vocab_size, cfg.model_dim, rng),
        patch_proj_(patch_dim, cfg.model_dim, rng),
        prefix_proj_(cfg.model_dim, cfg.model_dim, rng),
        text_encoder_(/*num_layers=*/1, cfg.model_dim, cfg.heads,
                      4 * cfg.model_dim, rng),
        fine_fusion_(cfg.model_dim, cfg.heads, rng),
        text_out_(cfg.model_dim, cfg.model_dim, rng),
        image_out_(cfg.model_dim, cfg.model_dim, rng) {
    positional_ = RegisterParameter(
        "positional", Tensor::Randn({64, cfg.model_dim}, rng, 0.02f));
    RegisterModule("tokens", &tokens_);
    RegisterModule("patch_proj", &patch_proj_);
    RegisterModule("prefix_proj", &prefix_proj_);
    RegisterModule("text_encoder", &text_encoder_);
    RegisterModule("fine_fusion", &fine_fusion_);
    RegisterModule("text_out", &text_out_);
    RegisterModule("image_out", &image_out_);
  }

  /// Entity representations fused with an image batch:
  /// returns (text reps [Bt, D], image reps [Bi, D]) pooled after the
  /// prefix-guided + fine-grained fusion stages; both L2-normalized.
  std::pair<Tensor, Tensor> Encode(
      const std::vector<std::vector<int64_t>>& token_batch,
      const Tensor& patches) const {
    const int64_t bt = static_cast<int64_t>(token_batch.size());
    const int64_t t = static_cast<int64_t>(token_batch[0].size());
    std::vector<int64_t> flat;
    for (const auto& row : token_batch) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    Tensor text = ops::Reshape(tokens_.Forward(flat), {bt, t, cfg_.model_dim});
    text = ops::Add(text, ops::Slice(positional_, 0, 0, t));
    Tensor mask = Tensor::Ones({bt, t});
    float* m = mask.data();
    for (int64_t i = 0; i < bt; ++i) {
      for (int64_t j = 0; j < t; ++j) {
        if (token_batch[static_cast<size_t>(i)][static_cast<size_t>(j)] ==
            text::Vocabulary::kPad) {
          m[i * t + j] = 0.0f;
        }
      }
    }
    Tensor vis = patch_proj_.Forward(patches);  // [Bi, P, D]

    // Coarse prefix: the pooled visual summary guides every text row
    // (batch-level guidance; pooled over the whole image batch).
    Tensor prefix = prefix_proj_.Forward(
        ops::Mean(ops::Mean(vis, 1, false), 0, true));  // [1, D]
    Tensor ht = text_encoder_.Forward(
        ops::Add(text, ops::Reshape(prefix, {1, 1, cfg_.model_dim})), mask);
    Tensor pooled_text = ops::Reshape(ops::Slice(ht, 1, 0, 1),
                                      {bt, cfg_.model_dim});

    // Fine-grained: patches attend within the image to correlate parts.
    Tensor hv = ops::Add(vis, fine_fusion_.ForwardSelf(vis));
    Tensor pooled_image = ops::Mean(hv, 1, false);

    Tensor te = ops::L2Normalize(text_out_.Forward(pooled_text));
    Tensor ie = ops::L2Normalize(image_out_.Forward(pooled_image));
    return {te, ie};
  }

 private:
  MkgFormerConfig cfg_;
  nn::Embedding tokens_;
  nn::Linear patch_proj_;
  nn::Linear prefix_proj_;
  Tensor positional_;
  nn::TransformerEncoder text_encoder_;
  nn::MultiHeadAttention fine_fusion_;
  nn::Linear text_out_;
  nn::Linear image_out_;
};

MkgFormerBaseline::MkgFormerBaseline(MkgFormerConfig config)
    : config_(config) {}
MkgFormerBaseline::~MkgFormerBaseline() = default;

Status MkgFormerBaseline::Fit(const BaselineContext& ctx) {
  if (ctx.dataset == nullptr || ctx.tokenizer == nullptr) {
    return Status::InvalidArgument("baseline context incomplete");
  }
  if (ctx.dataset->train_classes.empty()) {
    return Status::InvalidArgument("MKGformer trains on train-class links");
  }
  Rng rng(ctx.seed + 801);
  const data::CrossModalDataset& ds = *ctx.dataset;
  model_ = std::make_unique<Model>(config_, ctx.tokenizer->vocab().size(),
                                   ds.world->config().patch_dim, &rng);
  nn::AdamW opt(model_->Parameters(), config_.learning_rate);
  const auto& train = ds.train_classes;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int64_t step = 0; step < config_.batches_per_epoch; ++step) {
      auto pick = rng.SampleWithoutReplacement(
          static_cast<int64_t>(train.size()),
          std::min<int64_t>(config_.batch_size,
                            static_cast<int64_t>(train.size())));
      std::vector<std::string> texts;
      std::vector<Tensor> patch_list;
      for (int64_t k : pick) {
        const int64_t cls = train[static_cast<size_t>(k)];
        texts.push_back(SerializeVertex(
            ds.graph, ds.entities[static_cast<size_t>(cls)]));
        patch_list.push_back(ds.world->SampleImage(cls, 8, 4, &rng).patches);
      }
      auto [te, ie] = model_->Encode(ctx.tokenizer->EncodeBatch(texts),
                                     ops::Stack(patch_list));
      Tensor logits = ops::MulScalar(
          ops::MatMul(te, ops::Transpose(ie, 0, 1)), 10.0f);
      std::vector<int64_t> diag(pick.size());
      for (size_t i = 0; i < diag.size(); ++i) {
        diag[i] = static_cast<int64_t>(i);
      }
      Tensor loss = ops::NllLoss(ops::LogSoftmax(logits), diag);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model_->Parameters(), 5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

Result<Tensor> MkgFormerBaseline::Score(const BaselineContext& ctx) {
  if (!model_) return Status::Internal("Fit not called");
  NoGradGuard guard;
  std::vector<std::string> texts;
  for (graph::VertexId v : ctx.vertices) {
    texts.push_back(SerializeVertex(ctx.dataset->graph, v));
  }
  auto [te, ie] = model_->Encode(ctx.tokenizer->EncodeBatch(texts),
                                 ctx.images);
  return ops::MatMul(te, ops::Transpose(ie, 0, 1));
}

}  // namespace baselines
}  // namespace crossem
