// MKGformer-like baseline [47]: "integrates visions and texts via
// coarse-grained prefix-guided interaction and fine-grained
// correlation-aware fusion modules for knowledge graph completion".
//
// Reproduced mechanism: a hybrid transformer where (a) a pooled image
// prefix guides the text stream (coarse-grained prefix interaction) and
// (b) token-patch cross attention fuses fine-grained correlations; the
// fused representation scores (entity, has_image, image) links. Trained
// on TRAIN-class links with a contrastive objective.
#ifndef CROSSEM_BASELINES_MKGFORMER_H_
#define CROSSEM_BASELINES_MKGFORMER_H_

#include <memory>

#include "baselines/common.h"

namespace crossem {
namespace baselines {

struct MkgFormerConfig {
  int64_t model_dim = 32;
  int64_t heads = 4;
  int64_t epochs = 8;
  int64_t batches_per_epoch = 16;
  int64_t batch_size = 12;
  float learning_rate = 2e-3f;
};

class MkgFormerBaseline : public CrossModalBaseline {
 public:
  explicit MkgFormerBaseline(MkgFormerConfig config = {});
  ~MkgFormerBaseline() override;

  std::string name() const override { return "MKGformer"; }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  class Model;
  MkgFormerConfig config_;
  std::unique_ptr<Model> model_;
};

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_MKGFORMER_H_
