// Knowledge-graph-embedding baselines for the multi-modal KG integration
// case study (paper Table V): DistMult [44], RotatE [45], RSME [46], and
// TransE [41] as the classical reference.
//
// Framing: integrating an image into a multi-modal KG is predicting the
// link (entity, has_image, image). The KG holds the dataset's graph
// edges plus the has_image links of the TRAIN classes; models rank
// images for TEST entities. Entities and images are embedding rows;
// RSME additionally gates a projected visual feature into the image
// embedding ("is visual context really helpful" — its defining
// mechanism).
#ifndef CROSSEM_BASELINES_KGE_H_
#define CROSSEM_BASELINES_KGE_H_

#include <memory>
#include <string>

#include "baselines/common.h"

namespace crossem {
namespace baselines {

/// Score function families.
enum class KgeScoreFn {
  kTransE,    // -||h + r - t||
  kDistMult,  // <h, r, t>
  kRotatE,    // -||h o r - t|| with r a per-dimension rotation
  kRsme,      // DistMult with a visual gate on image-tail embeddings
};

const char* KgeScoreFnName(KgeScoreFn fn);

struct KgeConfig {
  KgeScoreFn score_fn = KgeScoreFn::kDistMult;
  int64_t dim = 24;  // even (RotatE uses complex pairs)
  int64_t epochs = 16;
  int64_t batches_per_epoch = 16;
  int64_t batch_size = 32;
  float learning_rate = 5e-3f;
  float margin = 2.0f;
};

/// One KGE model under the shared CrossModalBaseline interface.
class KgeBaseline : public CrossModalBaseline {
 public:
  explicit KgeBaseline(KgeConfig config = {});
  ~KgeBaseline() override;

  std::string name() const override { return KgeScoreFnName(config_.score_fn); }
  Status Fit(const BaselineContext& ctx) override;
  Result<Tensor> Score(const BaselineContext& ctx) override;

 private:
  class Model;
  KgeConfig config_;
  std::unique_ptr<Model> model_;
  Tensor image_summaries_;    // [N, patch_dim] mean patches, fixed
  int64_t has_image_rel_ = 0;
};

}  // namespace baselines
}  // namespace crossem

#endif  // CROSSEM_BASELINES_KGE_H_
