#include "text/tokenizer.h"

#include "gtest/gtest.h"

namespace crossem {
namespace text {
namespace {

TEST(VocabularyTest, SpecialsPreRegistered) {
  Vocabulary v;
  EXPECT_EQ(v.size(), Vocabulary::kNumSpecial);
  EXPECT_EQ(v.Id("[CLS]"), Vocabulary::kCls);
  EXPECT_EQ(v.Id("[SEP]"), Vocabulary::kSep);
  EXPECT_EQ(v.Id("[PAD]"), Vocabulary::kPad);
  EXPECT_EQ(v.Id("[MASK]"), Vocabulary::kMask);
  EXPECT_EQ(v.Word(Vocabulary::kUnk), "[UNK]");
}

TEST(VocabularyTest, AddWordIsIdempotent) {
  Vocabulary v;
  int64_t a = v.AddWord("albatross");
  EXPECT_EQ(v.AddWord("albatross"), a);
  EXPECT_EQ(v.Id("albatross"), a);
  EXPECT_TRUE(v.Contains("albatross"));
  EXPECT_FALSE(v.Contains("woodpecker"));
}

TEST(VocabularyTest, UnknownMapsToUnk) {
  Vocabulary v;
  EXPECT_EQ(v.Id("nonexistent"), Vocabulary::kUnk);
}

TEST(SplitWordsTest, LowercasesAndSplits) {
  EXPECT_EQ(SplitWords("Laysan Albatross"),
            (std::vector<std::string>{"laysan", "albatross"}));
}

TEST(SplitWordsTest, KeepsIntraWordHyphens) {
  EXPECT_EQ(SplitWords("long-wings, grey."),
            (std::vector<std::string>{"long-wings", "grey"}));
}

TEST(SplitWordsTest, TrimsDanglingHyphens) {
  EXPECT_EQ(SplitWords("-abc- def"),
            (std::vector<std::string>{"abc", "def"}));
}

TEST(SplitWordsTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("!!! ... ,,,").empty());
}

TEST(SplitWordsTest, DigitsAreWords) {
  EXPECT_EQ(SplitWords("top 5 birds"),
            (std::vector<std::string>{"top", "5", "birds"}));
}

TEST(TokenizerTest, WrapsWithClsSep) {
  Vocabulary v;
  int64_t a = v.AddWord("a");
  int64_t b = v.AddWord("b");
  Tokenizer tok(&v, 16);
  EXPECT_EQ(tok.Encode("a b"),
            (std::vector<int64_t>{Vocabulary::kCls, a, b, Vocabulary::kSep}));
}

TEST(TokenizerTest, TruncatesAtContextLength) {
  Vocabulary v;
  for (int i = 0; i < 20; ++i) v.AddWord("w" + std::to_string(i));
  Tokenizer tok(&v, 8);
  std::string long_text;
  for (int i = 0; i < 20; ++i) long_text += "w" + std::to_string(i) + " ";
  auto ids = tok.Encode(long_text);
  EXPECT_EQ(static_cast<int64_t>(ids.size()), 8);
  EXPECT_EQ(ids.front(), Vocabulary::kCls);
  EXPECT_EQ(ids.back(), Vocabulary::kSep);
}

TEST(TokenizerTest, PaddedEncodingHasFixedLength) {
  Vocabulary v;
  v.AddWord("a");
  Tokenizer tok(&v, 10);
  auto ids = tok.EncodePadded("a");
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(ids[3], Vocabulary::kPad);
  EXPECT_EQ(ids[9], Vocabulary::kPad);
}

TEST(TokenizerTest, UnknownWordsBecomeUnk) {
  Vocabulary v;
  Tokenizer tok(&v, 8);
  auto ids = tok.Encode("mystery");
  EXPECT_EQ(ids[1], Vocabulary::kUnk);
}

TEST(TokenizerTest, EncodeBatchPadsToLongestRow) {
  Vocabulary v;
  v.AddWord("a");
  v.AddWord("b");
  v.AddWord("c");
  Tokenizer tok(&v, 32);
  auto rows = tok.EncodeBatch({"a", "a b c"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), rows[1].size());
  EXPECT_EQ(rows[1].size(), 5u);  // CLS a b c SEP
  EXPECT_EQ(rows[0][3], Vocabulary::kPad);
  EXPECT_EQ(rows[0][4], Vocabulary::kPad);
}

TEST(TokenizerTest, EncodeBatchPrefixMatchesEncode) {
  Vocabulary v;
  for (const char* w : {"x", "y", "z"}) v.AddWord(w);
  Tokenizer tok(&v, 16);
  auto rows = tok.EncodeBatch({"x y", "z"});
  auto lone = tok.Encode("x y");
  for (size_t i = 0; i < lone.size(); ++i) EXPECT_EQ(rows[0][i], lone[i]);
}

TEST(TokenizerTest, DecodeRendersWords) {
  Vocabulary v;
  int64_t a = v.AddWord("albatross");
  Tokenizer tok(&v, 8);
  EXPECT_EQ(tok.Decode({Vocabulary::kCls, a, Vocabulary::kSep}),
            "[CLS] albatross [SEP]");
}

}  // namespace
}  // namespace text
}  // namespace crossem
