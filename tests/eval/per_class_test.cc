#include "eval/per_class.h"

#include "gtest/gtest.h"

namespace crossem {
namespace eval {
namespace {

TEST(QueryDiagnosticsTest, RanksAndConfusions) {
  // Query 0 (class 0): correct at 1. Query 1 (class 1): its relevant
  // candidate (0.2) is beaten by 0.3 and 0.8 -> rank 3, confused with
  // class 2 at the top.
  Tensor scores = Tensor::FromVector({2, 3}, {0.9f, 0.2f, 0.1f,  //
                                              0.3f, 0.2f, 0.8f});
  auto diags = ComputeQueryDiagnostics(scores, {0, 1}, {0, 1, 2});
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(diags[0].correct_at_1);
  EXPECT_EQ(diags[0].rank, 1);
  EXPECT_FALSE(diags[1].correct_at_1);
  EXPECT_EQ(diags[1].rank, 3);
  EXPECT_EQ(diags[1].top_candidate_class, 2);
}

TEST(QueryDiagnosticsTest, SkipsQueriesWithoutRelevant) {
  Tensor scores = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  auto diags = ComputeQueryDiagnostics(scores, {0, 9}, {0, 1});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].query_index, 0);
}

TEST(TopConfusionsTest, CountsAndOrdersFailures) {
  std::vector<QueryDiagnostic> diags;
  auto fail = [](int64_t true_c, int64_t pred_c) {
    QueryDiagnostic d;
    d.query_class = true_c;
    d.top_candidate_class = pred_c;
    d.rank = 2;
    d.correct_at_1 = false;
    return d;
  };
  diags.push_back(fail(1, 2));
  diags.push_back(fail(1, 2));
  diags.push_back(fail(3, 4));
  QueryDiagnostic ok;
  ok.correct_at_1 = true;
  diags.push_back(ok);
  auto top = TopConfusions(diags);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].true_class, 1);
  EXPECT_EQ(top[0].predicted_class, 2);
  EXPECT_EQ(top[0].count, 2);
  EXPECT_EQ(top[1].count, 1);
}

TEST(TopConfusionsTest, MaxPairsTruncates) {
  std::vector<QueryDiagnostic> diags;
  for (int i = 0; i < 5; ++i) {
    QueryDiagnostic d;
    d.query_class = i;
    d.top_candidate_class = i + 10;
    d.correct_at_1 = false;
    diags.push_back(d);
  }
  EXPECT_EQ(TopConfusions(diags, 3).size(), 3u);
}

}  // namespace
}  // namespace eval
}  // namespace crossem
