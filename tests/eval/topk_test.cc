// The shared deterministic ranking kernel: total order, heap selection,
// merge, and agreement with a naive argmax scan (the contract that let
// FindMatches/FindMutualMatches move onto it bitwise-unchanged).
#include "eval/topk.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace crossem {
namespace eval {
namespace {

TEST(TopKTest, OrdersByScoreThenLowerId) {
  const std::vector<float> scores = {0.5f, 0.9f, 0.9f, 0.1f, 0.9f};
  auto top = TopK(scores.data(), 5, 4);
  ASSERT_EQ(top.size(), 4u);
  // Three-way tie at 0.9 resolves toward lower ids.
  EXPECT_EQ(top[0].id, 1);
  EXPECT_EQ(top[1].id, 2);
  EXPECT_EQ(top[2].id, 4);
  EXPECT_EQ(top[3].id, 0);
}

TEST(TopKTest, KLargerThanNReturnsAll) {
  const std::vector<float> scores = {3.0f, 1.0f, 2.0f};
  auto top = TopK(scores.data(), 3, 10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0);
  EXPECT_EQ(top[1].id, 2);
  EXPECT_EQ(top[2].id, 1);
}

TEST(TopKTest, ZeroOrNegativeKIsEmpty) {
  const std::vector<float> scores = {1.0f};
  EXPECT_TRUE(TopK(scores.data(), 1, 0).empty());
  EXPECT_TRUE(TopK(scores.data(), 1, -3).empty());
}

TEST(TopKTest, MatchesFullSortOnRandomInput) {
  std::vector<float> scores;
  uint64_t state = 99;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Coarse quantization to force plenty of score ties.
    scores.push_back(static_cast<float>((state >> 56) % 16));
  }
  auto top = TopK(scores.data(), 500, 37);

  std::vector<ScoredId> all;
  for (int64_t i = 0; i < 500; ++i) all.push_back({i, scores[i]});
  std::sort(all.begin(), all.end(), RanksBefore);
  ASSERT_EQ(top.size(), 37u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].id, all[i].id) << "rank " << i;
    EXPECT_EQ(top[i].score, all[i].score) << "rank " << i;
  }
}

TEST(MergeTopKTest, MergesPartials) {
  std::vector<std::vector<ScoredId>> parts = {
      {{0, 0.9f}, {1, 0.5f}},
      {{2, 0.7f}, {3, 0.7f}},
      {},
      {{4, 1.0f}},
  };
  auto merged = MergeTopK(parts, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 4);
  EXPECT_EQ(merged[1].id, 0);
  EXPECT_EQ(merged[2].id, 2);  // ties at 0.7 resolve toward id 2
}

TEST(TopKRowsTest, RowWiseTopOneMatchesArgmaxScan) {
  Tensor scores = Tensor::FromVector(
      {3, 4}, {0.1f, 0.4f, 0.4f, 0.2f,   //
               0.9f, 0.0f, 0.1f, 0.9f,   //
               -1.0f, -2.0f, -0.5f, -3.0f});
  auto rows = TopKRows(scores, 1);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].front().id, 1);  // tie 0.4 -> first occurrence
  EXPECT_EQ(rows[1].front().id, 0);  // tie 0.9 -> first occurrence
  EXPECT_EQ(rows[2].front().id, 2);
}

}  // namespace
}  // namespace eval
}  // namespace crossem
