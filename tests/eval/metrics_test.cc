#include "eval/metrics.h"

#include "gtest/gtest.h"

namespace crossem {
namespace eval {
namespace {

TEST(MetricsTest, PerfectRanking) {
  // Query 0's relevant candidate has the top score; same for query 1.
  Tensor scores = Tensor::FromVector({2, 3}, {0.9f, 0.1f, 0.2f,  //
                                              0.1f, 0.8f, 0.3f});
  auto m = ComputeRankingMetricsByClass(scores, {0, 1}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
  EXPECT_DOUBLE_EQ(m.hits_at_3, 100.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
}

TEST(MetricsTest, SecondPlaceRanking) {
  Tensor scores = Tensor::FromVector({1, 3}, {0.5f, 0.9f, 0.1f});
  auto m = ComputeRankingMetricsByClass(scores, {0}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.0);
  EXPECT_DOUBLE_EQ(m.hits_at_3, 100.0);
  EXPECT_DOUBLE_EQ(m.hits_at_5, 100.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);
}

TEST(MetricsTest, RankBeyondFive) {
  Tensor scores = Tensor::FromVector(
      {1, 6}, {0.1f, 0.9f, 0.8f, 0.7f, 0.6f, 0.5f});
  auto m = ComputeRankingMetricsByClass(scores, {0}, {0, 1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(m.hits_at_5, 0.0);
  EXPECT_NEAR(m.mrr, 1.0 / 6.0, 1e-9);
}

TEST(MetricsTest, MultipleRelevantUsesBest) {
  // Two images of the query class; the better-ranked one counts.
  Tensor scores = Tensor::FromVector({1, 3}, {0.9f, 0.2f, 0.8f});
  auto m = ComputeRankingMetricsByClass(scores, {7}, {7, 1, 7});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
}

TEST(MetricsTest, QueriesWithoutRelevantAreSkipped) {
  Tensor scores = Tensor::FromVector({2, 2}, {0.9f, 0.1f,  //
                                              0.9f, 0.1f});
  // Query 1's class never appears among candidates.
  auto m = ComputeRankingMetricsByClass(scores, {0, 5}, {0, 1});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);  // only query 0 counted
}

TEST(MetricsTest, AllQueriesSkippedGivesZeros) {
  Tensor scores = Tensor::FromVector({1, 2}, {0.5f, 0.5f});
  auto m = ComputeRankingMetricsByClass(scores, {9}, {0, 1});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
}

TEST(MetricsTest, TiesDoNotPushRelevantDown) {
  Tensor scores = Tensor::FromVector({1, 3}, {0.5f, 0.5f, 0.5f});
  auto m = ComputeRankingMetricsByClass(scores, {2}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(m.hits_at_1, 100.0);
}

TEST(MetricsTest, ExplicitRelevanceMatrix) {
  Tensor scores = Tensor::FromVector({2, 2}, {0.1f, 0.9f,  //
                                              0.9f, 0.1f});
  std::vector<std::vector<bool>> rel = {{true, false}, {true, false}};
  auto m = ComputeRankingMetrics(scores, rel);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 50.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.75);
}

}  // namespace
}  // namespace eval
}  // namespace crossem
