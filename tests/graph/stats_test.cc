#include "graph/stats.h"

#include "gtest/gtest.h"

namespace crossem {
namespace graph {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  Graph g;
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 0);
  EXPECT_EQ(s.num_connected_components, 0);
}

TEST(GraphStatsTest, TwoComponentsWithIsolated) {
  Graph g;
  g.AddVertex("a");
  g.AddVertex("b");
  g.AddVertex("c");   // isolated
  g.AddVertex("d");
  ASSERT_TRUE(g.AddEdge(0, 1, "x").ok());
  ASSERT_TRUE(g.AddEdge(1, 3, "y").ok());
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 4);
  EXPECT_EQ(s.num_edges, 2);
  EXPECT_EQ(s.num_isolated_vertices, 1);
  EXPECT_EQ(s.num_connected_components, 2);  // {a,b,d} and {c}
  EXPECT_EQ(s.largest_component_size, 3);
  EXPECT_EQ(s.max_out_degree, 1);
  EXPECT_EQ(s.max_in_degree, 1);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.0);
  EXPECT_EQ(s.num_unique_edge_labels, 2);
}

TEST(GraphStatsTest, HubDegrees) {
  Graph g;
  g.AddVertex("hub");
  for (int i = 0; i < 5; ++i) {
    VertexId v = g.AddVertex("leaf" + std::to_string(i));
    ASSERT_TRUE(g.AddEdge(0, v, "has part").ok());
  }
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.max_out_degree, 5);
  EXPECT_EQ(s.num_connected_components, 1);
  EXPECT_EQ(s.num_unique_edge_labels, 1);
  EXPECT_NE(s.ToString().find("6 vertices"), std::string::npos);
}

}  // namespace
}  // namespace graph
}  // namespace crossem
