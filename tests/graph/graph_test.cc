#include "graph/graph.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "util/random.h"

namespace crossem {
namespace graph {
namespace {

Graph MakeBirdGraph() {
  // The paper's Figure 1(b) fragment: laysan albatross with attributes.
  Graph g;
  VertexId v1 = g.AddVertex("laysan albatross");
  VertexId v2 = g.AddVertex("white");
  VertexId v3 = g.AddVertex("black");
  VertexId v4 = g.AddVertex("long-wings");
  VertexId v5 = g.AddVertex("grey");
  EXPECT_TRUE(g.AddEdge(v1, v2, "has crown color").ok());
  EXPECT_TRUE(g.AddEdge(v1, v3, "has under tail color").ok());
  EXPECT_TRUE(g.AddEdge(v1, v4, "has wing shape").ok());
  EXPECT_TRUE(g.AddEdge(v4, v5, "has wing color").ok());
  return g;
}

TEST(GraphTest, AddVertexAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddVertex("a"), 0);
  EXPECT_EQ(g.AddVertex("b"), 1);
  EXPECT_EQ(g.NumVertices(), 2);
  EXPECT_EQ(g.VertexLabel(0), "a");
  EXPECT_EQ(g.VertexLabel(1), "b");
}

TEST(GraphTest, AddEdgeValidatesEndpoints) {
  Graph g;
  g.AddVertex("a");
  EXPECT_FALSE(g.AddEdge(0, 5, "x").ok());
  EXPECT_FALSE(g.AddEdge(-1, 0, "x").ok());
  EXPECT_TRUE(g.AddEdge(0, 0, "self").ok());
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphTest, OutAndInEdges) {
  Graph g = MakeBirdGraph();
  EXPECT_EQ(g.OutEdges(0).size(), 3u);
  EXPECT_EQ(g.InEdges(0).size(), 0u);
  EXPECT_EQ(g.InEdges(1).size(), 1u);
  EXPECT_EQ(g.GetEdge(g.OutEdges(3)[0]).label, "has wing color");
}

TEST(GraphTest, NeighborsAreUndirectedAndDeduplicated) {
  Graph g = MakeBirdGraph();
  auto n1 = g.Neighbors(0);
  EXPECT_EQ(n1.size(), 3u);  // v2, v3, v4
  auto n4 = g.Neighbors(3);
  // v4 neighbors: v1 (incoming) and v5 (outgoing).
  std::sort(n4.begin(), n4.end());
  EXPECT_EQ(n4, (std::vector<VertexId>{0, 4}));
}

TEST(GraphTest, NeighborsDedupesParallelEdges) {
  Graph g;
  g.AddVertex("a");
  g.AddVertex("b");
  ASSERT_TRUE(g.AddEdge(0, 1, "x").ok());
  ASSERT_TRUE(g.AddEdge(0, 1, "y").ok());
  ASSERT_TRUE(g.AddEdge(1, 0, "z").ok());
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
}

TEST(DHopSubgraphTest, ZeroHopsIsJustCenter) {
  Graph g = MakeBirdGraph();
  Subgraph s = g.DHopSubgraph(0, 0);
  EXPECT_EQ(s.center, 0);
  EXPECT_EQ(s.vertices, (std::vector<VertexId>{0}));
  EXPECT_TRUE(s.edges.empty());
}

TEST(DHopSubgraphTest, OneHopCoversDirectNeighbors) {
  Graph g = MakeBirdGraph();
  Subgraph s = g.DHopSubgraph(0, 1);
  EXPECT_EQ(s.vertices.size(), 4u);  // v1 + {v2,v3,v4}
  EXPECT_EQ(s.edges.size(), 3u);     // edge v4->v5 excluded (v5 outside)
}

TEST(DHopSubgraphTest, TwoHopsReachesGrey) {
  Graph g = MakeBirdGraph();
  Subgraph s = g.DHopSubgraph(0, 2);
  EXPECT_EQ(s.vertices.size(), 5u);
  EXPECT_EQ(s.edges.size(), 4u);
}

TEST(DHopSubgraphTest, BfsOrderStartsAtCenter) {
  Graph g = MakeBirdGraph();
  Subgraph s = g.DHopSubgraph(3, 1);
  EXPECT_EQ(s.vertices.front(), 3);
}

TEST(DHopSubgraphTest, DisconnectedVertexUnaffected) {
  Graph g = MakeBirdGraph();
  VertexId lone = g.AddVertex("woodpecker");
  Subgraph s = g.DHopSubgraph(lone, 3);
  EXPECT_EQ(s.vertices, (std::vector<VertexId>{lone}));
}

TEST(GraphTest, UniqueWordsSplitsLabels) {
  Graph g = MakeBirdGraph();
  auto words = g.UniqueWords();
  EXPECT_TRUE(words.count("laysan"));
  EXPECT_TRUE(words.count("albatross"));
  EXPECT_TRUE(words.count("crown"));
  EXPECT_TRUE(words.count("has"));
  EXPECT_TRUE(words.count("long-wings"));
  EXPECT_FALSE(words.count("laysan albatross"));
}

class DHopPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DHopPropertyTest, MonotoneAndClosedOnRandomGraph) {
  // Property: for every vertex, the d-hop vertex set grows monotonically
  // with d, always contains the center, and induced edges have both
  // endpoints inside.
  Graph g;
  crossem::Rng rng(GetParam());
  const int64_t n = 24;
  for (int64_t i = 0; i < n; ++i) g.AddVertex("v" + std::to_string(i));
  for (int64_t e = 0; e < 40; ++e) {
    ASSERT_TRUE(g.AddEdge(rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                          "rel")
                    .ok());
  }
  for (VertexId v = 0; v < n; v += 5) {
    size_t prev = 0;
    for (int64_t d = 0; d <= 3; ++d) {
      Subgraph s = g.DHopSubgraph(v, d);
      EXPECT_GE(s.vertices.size(), std::max<size_t>(prev, 1));
      EXPECT_NE(std::find(s.vertices.begin(), s.vertices.end(), v),
                s.vertices.end());
      std::set<VertexId> inside(s.vertices.begin(), s.vertices.end());
      for (EdgeId e : s.edges) {
        EXPECT_TRUE(inside.count(g.GetEdge(e).src));
        EXPECT_TRUE(inside.count(g.GetEdge(e).dst));
      }
      prev = s.vertices.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DHopPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(GraphTest, FindVertexByLabel) {
  Graph g = MakeBirdGraph();
  EXPECT_EQ(g.FindVertex("white"), 1);
  EXPECT_EQ(g.FindVertex("missing"), -1);
}

}  // namespace
}  // namespace graph
}  // namespace crossem
