#include "graph/data_mapping.h"

#include "gtest/gtest.h"

namespace crossem {
namespace graph {
namespace {

RelationalTable BirdTable() {
  // Figure 1(a) of the paper.
  RelationalTable t;
  t.name = "birds";
  t.columns = {"name", "color", "wings", "origin", "food"};
  t.key_column = 0;
  t.rows = {
      {"laysan albatross", "white", "long-wings", "pacific", "fish"},
      {"woodpecker", "spotted", "short-wings", "forest", "insects"},
  };
  return t;
}

TEST(TableMappingTest, TuplesBecomeEntities) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddTable(BirdTable()).ok());
  const Graph& g = b.graph();
  EXPECT_EQ(b.entity_vertices().size(), 2u);
  EXPECT_GE(g.FindVertex("laysan albatross"), 0);
  EXPECT_GE(g.FindVertex("woodpecker"), 0);
  // 2 rows x 4 attribute columns.
  EXPECT_EQ(g.NumEdges(), 8);
}

TEST(TableMappingTest, AttributeEdgesAreLabeled) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddTable(BirdTable()).ok());
  const Graph& g = b.graph();
  VertexId bird = g.FindVertex("laysan albatross");
  bool found = false;
  for (EdgeId e : g.OutEdges(bird)) {
    if (g.GetEdge(e).label == "has color") {
      EXPECT_EQ(g.VertexLabel(g.GetEdge(e).dst), "white");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TableMappingTest, SharedValuesAreInterned) {
  RelationalTable t = BirdTable();
  t.rows.push_back({"snow goose", "white", "mid-wings", "arctic", "grass"});
  GraphBuilder b;
  ASSERT_TRUE(b.AddTable(t).ok());
  const Graph& g = b.graph();
  VertexId white = g.FindVertex("white");
  ASSERT_GE(white, 0);
  EXPECT_EQ(g.InEdges(white).size(), 2u);  // albatross and goose share it
}

TEST(TableMappingTest, ForeignKeysLinkEntities) {
  RelationalTable habitats;
  habitats.name = "habitats";
  habitats.columns = {"habitat", "climate"};
  habitats.rows = {{"pacific", "mild"}};

  RelationalTable birds;
  birds.name = "birds";
  birds.columns = {"name", "habitat"};
  birds.foreign_keys[1] = "habitats";
  birds.rows = {{"laysan albatross", "pacific"}};

  GraphBuilder b;
  ASSERT_TRUE(b.AddTable(habitats).ok());
  ASSERT_TRUE(b.AddTable(birds).ok());
  const Graph& g = b.graph();
  VertexId bird = g.FindVertex("laysan albatross");
  ASSERT_EQ(g.OutEdges(bird).size(), 1u);
  const Edge& e = g.GetEdge(g.OutEdges(bird)[0]);
  EXPECT_EQ(e.label, "ref habitat");
  EXPECT_EQ(g.VertexLabel(e.dst), "pacific");
  // "pacific" must be the same entity vertex the habitats table created.
  EXPECT_EQ(g.NumVertices(), 3);  // pacific, mild, laysan albatross
}

TEST(TableMappingTest, EmptyCellsAreSkipped) {
  RelationalTable t;
  t.columns = {"name", "color"};
  t.rows = {{"x", ""}};
  GraphBuilder b;
  ASSERT_TRUE(b.AddTable(t).ok());
  EXPECT_EQ(b.graph().NumEdges(), 0);
}

TEST(TableMappingTest, RejectsBadKeyColumn) {
  RelationalTable t = BirdTable();
  t.key_column = 10;
  GraphBuilder b;
  EXPECT_FALSE(b.AddTable(t).ok());
}

TEST(TableMappingTest, RejectsRaggedRows) {
  RelationalTable t = BirdTable();
  t.rows.push_back({"short row"});
  GraphBuilder b;
  EXPECT_FALSE(b.AddTable(t).ok());
}

TEST(JsonMappingTest, ObjectBecomesEntityWithAttributes) {
  auto doc = ParseJson(R"({
    "name": "laysan albatross",
    "crown_color": "white",
    "wing_count": 2
  })");
  ASSERT_TRUE(doc.ok());
  GraphBuilder b;
  ASSERT_TRUE(b.AddJson(doc.value()).ok());
  const Graph& g = b.graph();
  VertexId bird = g.FindVertex("laysan albatross");
  ASSERT_GE(bird, 0);
  EXPECT_EQ(g.OutEdges(bird).size(), 2u);
  EXPECT_GE(g.FindVertex("white"), 0);
  EXPECT_GE(g.FindVertex("2"), 0);
}

TEST(JsonMappingTest, NestedObjectsBecomeLinkedEntities) {
  auto doc = ParseJson(R"({
    "name": "laysan albatross",
    "habitat": {"name": "pacific", "climate": "mild"}
  })");
  ASSERT_TRUE(doc.ok());
  GraphBuilder b;
  ASSERT_TRUE(b.AddJson(doc.value()).ok());
  const Graph& g = b.graph();
  VertexId bird = g.FindVertex("laysan albatross");
  VertexId habitat = g.FindVertex("pacific");
  ASSERT_GE(habitat, 0);
  ASSERT_EQ(g.OutEdges(bird).size(), 1u);
  EXPECT_EQ(g.GetEdge(g.OutEdges(bird)[0]).dst, habitat);
  // Nested object got its own attribute.
  EXPECT_EQ(g.OutEdges(habitat).size(), 1u);
}

TEST(JsonMappingTest, TopLevelArrayOfObjects) {
  auto doc = ParseJson(R"([
    {"name": "a", "c": "1"},
    {"name": "b", "c": "2"}
  ])");
  ASSERT_TRUE(doc.ok());
  GraphBuilder b;
  ASSERT_TRUE(b.AddJson(doc.value()).ok());
  EXPECT_EQ(b.entity_vertices().size(), 2u);
}

TEST(JsonMappingTest, RefCreatesEntityEdge) {
  auto doc = ParseJson(R"([
    {"name": "a", "$ref": "b"},
    {"name": "b"}
  ])");
  ASSERT_TRUE(doc.ok());
  GraphBuilder b;
  ASSERT_TRUE(b.AddJson(doc.value()).ok());
  const Graph& g = b.graph();
  VertexId a = g.FindVertex("a");
  VertexId bb = g.FindVertex("b");
  ASSERT_EQ(g.OutEdges(a).size(), 1u);
  EXPECT_EQ(g.GetEdge(g.OutEdges(a)[0]).dst, bb);
  EXPECT_EQ(b.entity_vertices().size(), 2u);  // "b" interned once
}

TEST(JsonMappingTest, RejectsAnonymousTopLevel) {
  auto doc = ParseJson(R"({"color": "white"})");
  ASSERT_TRUE(doc.ok());
  GraphBuilder b;
  EXPECT_FALSE(b.AddJson(doc.value()).ok());
}

TEST(JsonMappingTest, CrossSourceEntityResolution) {
  // A table row and a JSON object with the same name must merge into one
  // vertex — the data-lake unification property.
  GraphBuilder b;
  ASSERT_TRUE(b.AddTable(BirdTable()).ok());
  auto doc = ParseJson(R"({"name": "laysan albatross", "call": "moaning"})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(b.AddJson(doc.value()).ok());
  const Graph& g = b.graph();
  VertexId bird = g.FindVertex("laysan albatross");
  EXPECT_EQ(g.OutEdges(bird).size(), 5u);  // 4 table attrs + 1 json attr
  EXPECT_EQ(b.entity_vertices().size(), 2u);
}

TEST(CsvTest, ParsesHeaderAndRows) {
  auto r = ParseCsv("birds", "name,color\nalbatross,white\ngoose,grey\n");
  ASSERT_TRUE(r.ok());
  const RelationalTable& t = r.value();
  EXPECT_EQ(t.columns, (std::vector<std::string>{"name", "color"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "grey");
}

TEST(CsvTest, HandlesCrlfAndBlankLines) {
  auto r = ParseCsv("t", "a,b\r\n\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 1u);
}

TEST(CsvTest, RejectsWidthMismatch) {
  EXPECT_FALSE(ParseCsv("t", "a,b\n1\n").ok());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("t", "").ok());
}

TEST(GraphBuilderTest, AddRelationshipByLabel) {
  GraphBuilder b;
  b.AddEntity("a");
  b.AddEntity("b");
  EXPECT_TRUE(b.AddRelationship("a", "knows", "b").ok());
  EXPECT_FALSE(b.AddRelationship("a", "knows", "zz").ok());
  EXPECT_EQ(b.graph().NumEdges(), 1);
}

}  // namespace
}  // namespace graph
}  // namespace crossem
