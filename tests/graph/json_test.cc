#include "graph/json.h"

#include "gtest/gtest.h"

namespace crossem {
namespace graph {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().bool_value());
  EXPECT_FALSE(ParseJson("false").value().bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("3.5").value().number_value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseJson("-17").value().number_value(), -17.0);
  EXPECT_DOUBLE_EQ(ParseJson("1e3").value().number_value(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().string_value(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  auto r = ParseJson(R"("a\"b\\c\nd\te")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().string_value(), "a\"b\\c\nd\te");
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto r = ParseJson(R"("Aé")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().string_value(), "A\xC3\xA9");
}

TEST(JsonParseTest, Arrays) {
  auto r = ParseJson("[1, 2, [3]]");
  ASSERT_TRUE(r.ok());
  const auto& items = r.value().array_items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_DOUBLE_EQ(items[0].number_value(), 1.0);
  EXPECT_TRUE(items[2].is_array());
  EXPECT_TRUE(ParseJson("[]").value().array_items().empty());
}

TEST(JsonParseTest, Objects) {
  auto r = ParseJson(R"({"name": "albatross", "wings": 2, "flies": true})");
  ASSERT_TRUE(r.ok());
  const JsonValue& v = r.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("name")->string_value(), "albatross");
  EXPECT_DOUBLE_EQ(v.Find("wings")->number_value(), 2.0);
  EXPECT_TRUE(v.Find("flies")->bool_value());
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_TRUE(ParseJson("{}").value().object_members().empty());
}

TEST(JsonParseTest, NestedDocument) {
  auto r = ParseJson(R"({
    "name": "laysan albatross",
    "attributes": [{"name": "white crown"}, {"name": "black tail"}],
    "habitat": {"name": "pacific", "ocean": true}
  })");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue& v = r.value();
  EXPECT_EQ(v.Find("attributes")->array_items().size(), 2u);
  EXPECT_EQ(v.Find("habitat")->Find("name")->string_value(), "pacific");
}

struct BadJsonCase {
  const char* name;
  const char* text;
};

class JsonErrorTest : public ::testing::TestWithParam<BadJsonCase> {};

TEST_P(JsonErrorTest, RejectsMalformedInput) {
  auto r = ParseJson(GetParam().text);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonErrorTest,
    ::testing::Values(
        BadJsonCase{"empty", ""}, BadJsonCase{"bareword", "albatross"},
        BadJsonCase{"unterminated_string", "\"abc"},
        BadJsonCase{"unterminated_object", "{\"a\": 1"},
        BadJsonCase{"unterminated_array", "[1, 2"},
        BadJsonCase{"missing_colon", "{\"a\" 1}"},
        BadJsonCase{"trailing_garbage", "1 x"},
        BadJsonCase{"bad_escape", "\"\\q\""},
        BadJsonCase{"bad_unicode", "\"\\u00zz\""},
        BadJsonCase{"nonstring_key", "{1: 2}"},
        BadJsonCase{"double_comma", "[1,,2]"},
        BadJsonCase{"bad_number", "1.2.3"}),
    [](const ::testing::TestParamInfo<BadJsonCase>& info) {
      return info.param.name;
    });

TEST(JsonDumpTest, RoundTripsStructure) {
  auto r = ParseJson(R"({"b": [1, true, null], "a": "x"})");
  ASSERT_TRUE(r.ok());
  std::string dumped = r.value().Dump();
  auto r2 = ParseJson(dumped);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().Dump(), dumped);
  EXPECT_EQ(dumped, R"({"a":"x","b":[1,true,null]})");
}

TEST(JsonDumpTest, EscapesSpecials) {
  JsonValue v = JsonValue::String("a\"b\nc");
  EXPECT_EQ(v.Dump(), R"("a\"b\nc")");
}

}  // namespace
}  // namespace graph
}  // namespace crossem
