// End-to-end reproducibility: identical seeds must give bit-identical
// datasets, models, tuning trajectories and match sets — the guarantee
// every experiment in EXPERIMENTS.md relies on.
#include "clip/pretrain.h"
#include "core/crossem.h"
#include "data/dataset.h"
#include "gtest/gtest.h"

namespace crossem {
namespace {

struct PipelineResult {
  std::vector<float> scores;
  std::vector<int64_t> matched_images;
  float final_loss;
};

PipelineResult RunPipeline(uint64_t seed) {
  data::DatasetConfig dc = data::CubLikeConfig(0.4);
  data::CrossModalDataset ds = data::BuildDataset(dc);
  clip::ClipConfig cc;
  cc.vocab_size = ds.vocab.size();
  cc.text_context = 32;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = ds.world->config().patch_dim;
  cc.max_patches = 16;
  cc.embed_dim = 12;
  Rng rng(seed);
  clip::ClipModel model(cc, &rng);
  text::Tokenizer tok(&ds.vocab, cc.text_context);
  clip::PretrainConfig pc;
  pc.epochs = 2;
  pc.batches_per_epoch = 4;
  pc.batch_size = 8;
  pc.seed = seed + 1;
  std::vector<int64_t> all(static_cast<size_t>(ds.world->num_classes()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
  EXPECT_TRUE(clip::PretrainClip(&model, *ds.world, all, tok, pc).ok());

  std::vector<graph::VertexId> vertices;
  for (int64_t c : ds.test_classes) {
    vertices.push_back(ds.entities[static_cast<size_t>(c)]);
  }
  Tensor images = ds.StackImages(ds.TestImageIndices());

  core::CrossEmOptions opt = core::CrossEmPlusOptions();
  opt.epochs = 2;
  opt.seed = seed + 2;
  core::CrossEm matcher(&model, &ds.graph, &tok, opt);
  auto stats = matcher.Fit(vertices, images);
  EXPECT_TRUE(stats.ok());

  PipelineResult result;
  result.final_loss = stats.value().FinalLoss();
  result.scores = matcher.ScoreMatrix(vertices, images).ToVector();
  for (const auto& pair : matcher.FindMatches(vertices, images)) {
    result.matched_images.push_back(pair.image);
  }
  return result;
}

TEST(ReproducibilityTest, IdenticalSeedsIdenticalPipelines) {
  PipelineResult a = RunPipeline(77);
  PipelineResult b = RunPipeline(77);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.matched_images, b.matched_images);
  EXPECT_EQ(a.final_loss, b.final_loss);
}

TEST(ReproducibilityTest, DifferentSeedsDifferentModels) {
  PipelineResult a = RunPipeline(77);
  PipelineResult b = RunPipeline(78);
  EXPECT_NE(a.scores, b.scores);
}

}  // namespace
}  // namespace crossem
