#include "nn/layers.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"

namespace crossem {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  nn::Linear lin(4, 3, &rng);
  Tensor x = Tensor::Randn({5, 4}, &rng);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(LinearTest, BatchedInput) {
  Rng rng(2);
  nn::Linear lin(4, 6, &rng);
  Tensor x = Tensor::Randn({2, 3, 4}, &rng);
  EXPECT_EQ(lin.Forward(x).shape(), (Shape{2, 3, 6}));
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(3);
  nn::Linear lin(2, 2, &rng, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  Tensor zero = Tensor::Zeros({1, 2});
  Tensor y = lin.Forward(zero);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
}

TEST(LinearTest, KnownValues) {
  Rng rng(4);
  nn::Linear lin(2, 2, &rng);
  // Overwrite the weights to a known matrix: y = [x0+2x1, 3x0+4x1] + [1, -1].
  Tensor w = lin.weight();
  w.data()[0] = 1;
  w.data()[1] = 3;
  w.data()[2] = 2;
  w.data()[3] = 4;
  Tensor b = lin.bias();
  b.data()[0] = 1;
  b.data()[1] = -1;
  Tensor y = lin.Forward(Tensor::FromVector({1, 2}, {1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(1), 6.0f);
}

TEST(LinearTest, GradFlowsToWeightAndBias) {
  Rng rng(5);
  nn::Linear lin(3, 2, &rng);
  Tensor x = Tensor::Randn({4, 3}, &rng);
  ops::Sum(lin.Forward(x)).Backward();
  EXPECT_TRUE(lin.weight().grad().defined());
  EXPECT_TRUE(lin.bias().grad().defined());
  // Bias gradient for Sum objective is the row count.
  EXPECT_FLOAT_EQ(lin.bias().grad().at(0), 4.0f);
}

TEST(EmbeddingTest, LookupRows) {
  Rng rng(6);
  nn::Embedding emb(10, 4, &rng);
  Tensor out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  // Duplicate lookups return identical rows.
  for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(out.at(c), out.at(4 + c));
}

TEST(EmbeddingTest, GradScatterAdds) {
  Rng rng(7);
  nn::Embedding emb(5, 2, &rng);
  ops::Sum(emb.Forward({1, 1, 2})).Backward();
  Tensor g = emb.table().grad();
  ASSERT_TRUE(g.defined());
  EXPECT_FLOAT_EQ(g.at(1 * 2), 2.0f);  // row 1 hit twice
  EXPECT_FLOAT_EQ(g.at(2 * 2), 1.0f);  // row 2 hit once
  EXPECT_FLOAT_EQ(g.at(0), 0.0f);      // row 0 untouched
}

TEST(LayerNormTest, NormalizesLastDim) {
  Rng rng(8);
  nn::LayerNorm ln(8);
  Tensor x = Tensor::Randn({4, 8}, &rng, 5.0f);
  Tensor y = ln.Forward(x);
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 8; ++c) mean += y.at(r * 8 + c);
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      double d = y.at(r * 8 + c) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradNumeric) {
  Rng rng(9);
  nn::LayerNorm ln(4);
  Tensor w = Tensor::Randn({3, 4}, &rng);
  testing::ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return ops::Sum(ops::Mul(ln.Forward(x), w)); },
      Tensor::Randn({3, 4}, &rng));
}

TEST(ModuleTest, ParameterCollection) {
  Rng rng(10);
  nn::Linear lin(3, 2, &rng);
  auto named = lin.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(lin.NumParameters(), 3 * 2 + 2);
}

TEST(ModuleTest, FreezeStopsGradients) {
  Rng rng(11);
  nn::Linear lin(2, 2, &rng);
  lin.SetRequiresGrad(false);
  Tensor x = Tensor::Randn({1, 2}, &rng);
  x.set_requires_grad(true);
  ops::Sum(lin.Forward(x)).Backward();
  EXPECT_FALSE(lin.weight().grad().defined());
  EXPECT_TRUE(x.grad().defined());  // grads still flow through
}

TEST(ModuleTest, TrainingModePropagates) {
  Rng rng(12);
  nn::Linear lin(2, 2, &rng);
  EXPECT_TRUE(lin.training());
  lin.SetTraining(false);
  EXPECT_FALSE(lin.training());
}

}  // namespace
}  // namespace crossem
