#include "nn/attention.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"

namespace crossem {
namespace {

TEST(MultiHeadAttentionTest, OutputShape) {
  Rng rng(1);
  nn::MultiHeadAttention mha(8, 2, &rng);
  Tensor x = Tensor::Randn({2, 5, 8}, &rng);
  Tensor y = mha.ForwardSelf(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
}

TEST(MultiHeadAttentionTest, CrossAttentionShapes) {
  Rng rng(2);
  nn::MultiHeadAttention mha(8, 4, &rng);
  Tensor q = Tensor::Randn({2, 3, 8}, &rng);
  Tensor ctx = Tensor::Randn({2, 7, 8}, &rng);
  Tensor y = mha.Forward(q, ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 8}));
}

TEST(MultiHeadAttentionTest, PaddingMaskBlocksKeys) {
  Rng rng(3);
  nn::MultiHeadAttention mha(4, 1, &rng);
  // Two contexts identical in the first 2 positions, different in the last;
  // masking the last key must make outputs identical.
  Tensor ctx1 = Tensor::Randn({1, 3, 4}, &rng);
  Tensor ctx2 = ctx1.Clone();
  for (int64_t c = 0; c < 4; ++c) ctx2.data()[2 * 4 + c] += 10.0f;
  Tensor q = Tensor::Randn({1, 2, 4}, &rng);
  Tensor mask = Tensor::FromVector({1, 3}, {1, 1, 0});
  Tensor y1 = mha.Forward(q, ctx1, mask);
  Tensor y2 = mha.Forward(q, ctx2, mask);
  for (int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(y1.at(i), y2.at(i), 1e-4f);
  }
}

TEST(MultiHeadAttentionTest, GradientFlowsToInput) {
  Rng rng(4);
  nn::MultiHeadAttention mha(4, 2, &rng);
  Tensor x = Tensor::Randn({1, 3, 4}, &rng);
  x.set_requires_grad(true);
  ops::Sum(mha.ForwardSelf(x)).Backward();
  ASSERT_TRUE(x.grad().defined());
  float norm = 0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    norm += std::fabs(x.grad().at(i));
  }
  EXPECT_GT(norm, 0.0f);
}

TEST(MultiHeadAttentionTest, GradNumericSmall) {
  Rng rng(5);
  nn::MultiHeadAttention mha(4, 2, &rng);
  Tensor w = Tensor::Randn({1, 2, 4}, &rng);
  testing::ExpectGradMatchesNumeric(
      [&](const Tensor& x) {
        return ops::Sum(ops::Mul(mha.ForwardSelf(x), w));
      },
      Tensor::Randn({1, 2, 4}, &rng, 0.5f));
}

TEST(TransformerBlockTest, ShapePreserved) {
  Rng rng(6);
  nn::TransformerBlock block(8, 2, 16, &rng);
  Tensor x = Tensor::Randn({2, 4, 8}, &rng);
  EXPECT_EQ(block.Forward(x).shape(), (Shape{2, 4, 8}));
}

TEST(TransformerEncoderTest, StackDepthAndShape) {
  Rng rng(7);
  nn::TransformerEncoder enc(3, 8, 2, 16, &rng);
  EXPECT_EQ(enc.num_layers(), 3);
  Tensor x = Tensor::Randn({2, 4, 8}, &rng);
  EXPECT_EQ(enc.Forward(x).shape(), (Shape{2, 4, 8}));
}

TEST(TransformerEncoderTest, ParametersRegisteredRecursively) {
  Rng rng(8);
  nn::TransformerEncoder enc(2, 8, 2, 16, &rng);
  // Per block: MHA (4 linears * 2 params) + 2 LN (2 each) + 2 MLP linears
  // (2 each) = 16; final LN adds 2.
  EXPECT_EQ(enc.Parameters().size(), 2u * 16u + 2u);
}

TEST(TransformerEncoderTest, TrainingLowersLossOnToyTask) {
  // Sanity: one encoder + readout can fit a random target via SGD.
  Rng rng(9);
  nn::TransformerEncoder enc(1, 8, 2, 16, &rng);
  Tensor x = Tensor::Randn({2, 3, 8}, &rng);
  Tensor target = Tensor::Randn({2, 3, 8}, &rng);
  auto loss_fn = [&]() {
    Tensor d = ops::Sub(enc.Forward(x), target);
    return ops::Mean(ops::Mul(d, d));
  };
  float initial = loss_fn().item();
  nn::Sgd opt(enc.Parameters(), 0.05f);
  for (int step = 0; step < 30; ++step) {
    opt.ZeroGrad();
    Tensor loss = loss_fn();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(loss_fn().item(), initial * 0.8f);
}

}  // namespace
}  // namespace crossem
