#include "nn/serialize.h"

#include <unistd.h>

#include <cstdio>

#include "clip/clip.h"
#include "gtest/gtest.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace crossem {
namespace nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripLinear) {
  Rng rng(1);
  Linear a(4, 3, &rng);
  const std::string path = TempPath("linear.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  Rng rng2(99);  // different init
  Linear b(4, 3, &rng2);
  ASSERT_NE(a.weight().ToVector(), b.weight().ToVector());
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  EXPECT_EQ(a.weight().ToVector(), b.weight().ToVector());
  EXPECT_EQ(a.bias().ToVector(), b.bias().ToVector());
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripFullClipModel) {
  clip::ClipConfig cc;
  cc.vocab_size = 30;
  cc.text_context = 12;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = 8;
  cc.max_patches = 4;
  cc.embed_dim = 8;
  Rng rng(2);
  clip::ClipModel a(cc, &rng);
  const std::string path = TempPath("clip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  Rng rng2(77);
  clip::ClipModel b(cc, &rng2);
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].second.ToVector(), pb[i].second.ToVector()) << pa[i].first;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  Rng rng(3);
  Linear a(4, 3, &rng);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  Linear wrong_shape(4, 5, &rng);
  auto st = LoadCheckpoint(&wrong_shape, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  LayerNorm wrong_names(4);
  EXPECT_FALSE(LoadCheckpoint(&wrong_names, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint at all", f);
  std::fclose(f);
  Rng rng(4);
  Linear lin(2, 2, &rng);
  auto st = LoadCheckpoint(&lin, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsTruncatedFile) {
  Rng rng(5);
  Linear a(8, 8, &rng);
  const std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  // Truncate the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  Linear b(8, 8, &rng);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(6);
  Linear lin(2, 2, &rng);
  auto st = LoadCheckpoint(&lin, TempPath("does_not_exist.ckpt"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(SerializeTest, SaveToUnwritablePathFails) {
  Rng rng(7);
  Linear lin(2, 2, &rng);
  EXPECT_FALSE(SaveCheckpoint(lin, "/nonexistent_dir/x.ckpt").ok());
}

}  // namespace
}  // namespace nn
}  // namespace crossem
