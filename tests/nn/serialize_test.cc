#include "nn/serialize.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "clip/clip.h"
#include "gtest/gtest.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "util/fault_injection.h"

namespace crossem {
namespace nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<std::vector<float>> SnapshotValues(const Module& m) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, p] : m.NamedParameters()) out.push_back(p.ToVector());
  return out;
}

TEST(SerializeTest, RoundTripLinear) {
  Rng rng(1);
  Linear a(4, 3, &rng);
  const std::string path = TempPath("linear.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  Rng rng2(99);  // different init
  Linear b(4, 3, &rng2);
  ASSERT_NE(a.weight().ToVector(), b.weight().ToVector());
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  EXPECT_EQ(a.weight().ToVector(), b.weight().ToVector());
  EXPECT_EQ(a.bias().ToVector(), b.bias().ToVector());
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripFullClipModel) {
  clip::ClipConfig cc;
  cc.vocab_size = 30;
  cc.text_context = 12;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = 8;
  cc.max_patches = 4;
  cc.embed_dim = 8;
  Rng rng(2);
  clip::ClipModel a(cc, &rng);
  const std::string path = TempPath("clip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  Rng rng2(77);
  clip::ClipModel b(cc, &rng2);
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].second.ToVector(), pb[i].second.ToVector()) << pa[i].first;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  Rng rng(3);
  Linear a(4, 3, &rng);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  Linear wrong_shape(4, 5, &rng);
  auto st = LoadCheckpoint(&wrong_shape, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  LayerNorm wrong_names(4);
  EXPECT_FALSE(LoadCheckpoint(&wrong_names, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint at all", f);
  std::fclose(f);
  Rng rng(4);
  Linear lin(2, 2, &rng);
  auto st = LoadCheckpoint(&lin, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsTruncatedFile) {
  Rng rng(5);
  Linear a(8, 8, &rng);
  const std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  // Truncate the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  Linear b(8, 8, &rng);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(6);
  Linear lin(2, 2, &rng);
  auto st = LoadCheckpoint(&lin, TempPath("does_not_exist.ckpt"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(SerializeTest, SaveToUnwritablePathFails) {
  Rng rng(7);
  Linear lin(2, 2, &rng);
  EXPECT_FALSE(SaveCheckpoint(lin, "/nonexistent_dir/x.ckpt").ok());
}

TEST(SerializeTest, SaveLeavesNoTmpFileBehind) {
  Rng rng(8);
  Linear lin(3, 3, &rng);
  const std::string path = TempPath("clean_save.ckpt");
  ASSERT_TRUE(SaveCheckpoint(lin, path).ok());
  EXPECT_TRUE(io::FileExists(path));
  EXPECT_FALSE(io::FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

// Table-driven corruption drills: every mutation of a valid v2 file must
// fail the load as kParseError without mutating a single module value.
TEST(SerializeTest, CorruptFilesAreRejectedWithoutPartialLoads) {
  Rng rng(21);
  Linear source(6, 4, &rng);
  const std::string good_path = TempPath("corrupt_base.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, good_path).ok());
  const std::string good = ReadFileBytes(good_path);
  ASSERT_GT(good.size(), 48u);

  struct Case {
    const char* name;
    std::function<std::string(std::string)> corrupt;
  };
  const std::vector<Case> cases = {
      {"flipped magic byte",
       [](std::string d) { d[3] ^= 0xFF; return d; }},
      {"v3 future version",
       [](std::string d) { d[7] = '3'; return d; }},
      {"empty file", [](std::string) { return std::string(); }},
      {"truncated header", [](std::string d) { return d.substr(0, 10); }},
      {"truncated mid-record",
       [](std::string d) { return d.substr(0, d.size() / 2); }},
      {"missing trailer",
       [](std::string d) { return d.substr(0, d.size() - 12); }},
      {"payload bit flip",
       [](std::string d) { d[d.size() / 2] ^= 0x10; return d; }},
      {"record crc flip",
       // The byte right before the 12-byte trailer is the last record's CRC.
       [](std::string d) { d[d.size() - 13] ^= 0x01; return d; }},
      {"trailer crc flip",
       [](std::string d) { d[d.size() - 12] ^= 0x01; return d; }},
      {"trailing garbage", [](std::string d) { return d + "junk"; }},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string path = TempPath("corrupt_case.ckpt");
    WriteFileBytes(path, c.corrupt(good));
    Rng rng2(22);
    Linear target(6, 4, &rng2);
    const auto before = SnapshotValues(target);
    Status st = LoadCheckpoint(&target, path);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
    EXPECT_EQ(SnapshotValues(target), before)
        << "failed load must not touch module values";
    std::remove(path.c_str());
  }
  std::remove(good_path.c_str());
}

TEST(SerializeTest, MismatchedLoadLeavesModuleUntouched) {
  Rng rng(23);
  Linear source(4, 3, &rng);
  const std::string path = TempPath("mismatch_untouched.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());

  // Same "weight" name, different shape: the shape check must reject the
  // load before any value is copied.
  Rng rng2(24);
  Linear target(4, 5, &rng2);
  const auto before = SnapshotValues(target);
  Status st = LoadCheckpoint(&target, path);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  EXPECT_EQ(SnapshotValues(target), before);
  std::remove(path.c_str());
}

// Hand-writes the v1 layout ("CEMCKPT1", no checksums) and checks new
// binaries still read it.
TEST(SerializeTest, ReadsVersion1Checkpoints) {
  Rng rng(31);
  Linear source(5, 2, &rng);
  const std::string path = TempPath("v1_compat.ckpt");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("CEMCKPT1", 8);
    const auto named = source.NamedParameters();
    const int64_t count = static_cast<int64_t>(named.size());
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& [name, tensor] : named) {
      const int64_t name_len = static_cast<int64_t>(name.size());
      out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
      out.write(name.data(), name_len);
      const int64_t rank = tensor.dim();
      out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
      for (int64_t d : tensor.shape()) {
        out.write(reinterpret_cast<const char*>(&d), sizeof(d));
      }
      const auto values = tensor.ToVector();
      out.write(reinterpret_cast<const char*>(values.data()),
                static_cast<std::streamsize>(values.size() * sizeof(float)));
    }
    ASSERT_TRUE(out.good());
  }

  Rng rng2(32);
  Linear target(5, 2, &rng2);
  ASSERT_NE(SnapshotValues(target), SnapshotValues(source));
  ASSERT_TRUE(LoadCheckpoint(&target, path).ok());
  EXPECT_EQ(SnapshotValues(target), SnapshotValues(source));

  // v1 files carry no training state.
  TrainState state;
  Status st = LoadTrainState(target.NamedParameters(), &state, path);
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  std::remove(path.c_str());
}

TEST(TrainStateTest, RoundTripsEverything) {
  Rng rng(41);
  Linear lin(3, 2, &rng);
  const auto named = lin.NamedParameters();
  ASSERT_EQ(named.size(), 2u);

  TrainState state;
  state.next_epoch = 4;
  state.learning_rate = 0.125f;
  state.optimizer.step = 17;
  state.optimizer.m = {std::vector<float>(6, 0.5f), {}};  // second: lazy slot
  state.optimizer.v = {std::vector<float>(6, 0.25f), {}};
  state.rng_state = rng.SaveState();
  state.proximity = Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});

  const std::string path = TempPath("train_state.ckpt");
  ASSERT_TRUE(SaveTrainState(named, state, path).ok());

  Rng rng2(42);
  Linear other(3, 2, &rng2);
  TrainState loaded;
  ASSERT_TRUE(
      LoadTrainState(other.NamedParameters(), &loaded, path).ok());
  EXPECT_EQ(SnapshotValues(other), SnapshotValues(lin));
  EXPECT_EQ(loaded.next_epoch, 4);
  EXPECT_EQ(loaded.learning_rate, 0.125f);
  EXPECT_EQ(loaded.optimizer.step, 17);
  EXPECT_EQ(loaded.optimizer.m, state.optimizer.m);
  EXPECT_EQ(loaded.optimizer.v, state.optimizer.v);
  EXPECT_EQ(loaded.rng_state, state.rng_state);
  ASSERT_TRUE(loaded.proximity.defined());
  EXPECT_EQ(loaded.proximity.ToVector(), state.proximity.ToVector());
  std::remove(path.c_str());
}

TEST(TrainStateTest, ModelLoadsFromTrainingBundleViaPrefix) {
  // A training checkpoint names module records "model.<name>";
  // LoadCheckpoint must find them and ignore the "state/..." extras.
  Rng rng(43);
  Linear lin(4, 4, &rng);
  std::vector<std::pair<std::string, Tensor>> prefixed;
  for (const auto& [name, tensor] : lin.NamedParameters()) {
    prefixed.emplace_back("model." + name, tensor);
  }
  TrainState state;
  state.optimizer.m = {{}, {}};
  state.optimizer.v = {{}, {}};
  state.rng_state = rng.SaveState();
  const std::string path = TempPath("bundle.ckpt");
  ASSERT_TRUE(SaveTrainState(prefixed, state, path).ok());

  Rng rng2(44);
  Linear target(4, 4, &rng2);
  ASSERT_TRUE(LoadCheckpoint(&target, path).ok());
  EXPECT_EQ(SnapshotValues(target), SnapshotValues(lin));
  std::remove(path.c_str());
}

TEST(TrainStateTest, PlainCheckpointIsNotATrainingCheckpoint) {
  Rng rng(45);
  Linear lin(2, 3, &rng);
  const std::string path = TempPath("not_train_state.ckpt");
  ASSERT_TRUE(SaveCheckpoint(lin, path).ok());
  TrainState state;
  Status st = LoadTrainState(lin.NamedParameters(), &state, path);
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  EXPECT_NE(st.ToString().find("training-state"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

/// Fault-injection drills share process-wide state: always disarm.
class SerializeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Clear(); }
  void TearDown() override { fault::Clear(); }
};

TEST_F(SerializeFaultTest, EverySavePathFaultSurfacesAsStatus) {
  Rng rng(51);
  Linear lin(8, 8, &rng);
  const std::string path = TempPath("save_fault.ckpt");

  struct Case {
    const char* name;
    fault::FileOp op;
    int64_t nth;
  };
  const std::vector<Case> cases = {
      {"tmp open fails", fault::FileOp::kOpen, 1},
      {"first write fails", fault::FileOp::kWrite, 1},
      {"mid-file write fails", fault::FileOp::kWrite, 5},
      {"fflush fails", fault::FileOp::kFlush, 1},
      {"fsync fails", fault::FileOp::kFlush, 2},
      {"rename fails", fault::FileOp::kRename, 1},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    fault::FailOn(c.op, c.nth);
    Status st = SaveCheckpoint(lin, path);
    fault::Clear();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
    EXPECT_NE(st.ToString().find(path), std::string::npos)
        << "message must name the failing path: " << st.ToString();
    EXPECT_FALSE(io::FileExists(path + ".tmp"))
        << "failed save must not leave a tmp file";
    EXPECT_FALSE(io::FileExists(path));
  }

  // And with no fault armed, the same save succeeds.
  ASSERT_TRUE(SaveCheckpoint(lin, path).ok());
  std::remove(path.c_str());
}

TEST_F(SerializeFaultTest, LoadFaultsSurfaceAsStatus) {
  Rng rng(52);
  Linear lin(8, 8, &rng);
  const std::string path = TempPath("load_fault.ckpt");
  ASSERT_TRUE(SaveCheckpoint(lin, path).ok());

  Rng rng2(53);
  Linear target(8, 8, &rng2);
  const auto before = SnapshotValues(target);

  fault::FailOn(fault::FileOp::kOpen, 1);
  Status open_fail = LoadCheckpoint(&target, path);
  fault::Clear();
  EXPECT_EQ(open_fail.code(), StatusCode::kIOError) << open_fail.ToString();
  EXPECT_NE(open_fail.ToString().find(path), std::string::npos);

  fault::FailOn(fault::FileOp::kRead, 1);
  Status read_fail = LoadCheckpoint(&target, path);
  fault::Clear();
  EXPECT_EQ(read_fail.code(), StatusCode::kIOError) << read_fail.ToString();
  EXPECT_NE(read_fail.ToString().find(path), std::string::npos);

  EXPECT_EQ(SnapshotValues(target), before);
  ASSERT_TRUE(LoadCheckpoint(&target, path).ok());
  EXPECT_EQ(SnapshotValues(target), SnapshotValues(lin));
  std::remove(path.c_str());
}

TEST_F(SerializeFaultTest, TrainStateSaveFaultLeavesOldCheckpointIntact) {
  // Atomicity: when a later save fails, the previous checkpoint file must
  // survive unmodified — exactly what crash-safe resume depends on.
  Rng rng(54);
  Linear lin(4, 4, &rng);
  const auto named = lin.NamedParameters();
  TrainState state;
  state.next_epoch = 1;
  state.optimizer.m = {{}, {}};
  state.optimizer.v = {{}, {}};
  state.rng_state = rng.SaveState();
  const std::string path = TempPath("atomic.ckpt");
  ASSERT_TRUE(SaveTrainState(named, state, path).ok());
  const std::string before = ReadFileBytes(path);

  state.next_epoch = 2;
  fault::FailOn(fault::FileOp::kWrite, 3);
  Status st = SaveTrainState(named, state, path);
  fault::Clear();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(ReadFileBytes(path), before);
  EXPECT_FALSE(io::FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

// Runs only under the dedicated CTest entry that sets CROSSEM_FAULT_SPEC
// (see tests/CMakeLists.txt): proves the env-variable arming path works
// end to end through the checkpoint writer.
TEST(SerializeEnvFaultTest, EnvSpecFailsCheckpointIo) {
  const char* spec = std::getenv("CROSSEM_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') {
    GTEST_SKIP() << "CROSSEM_FAULT_SPEC not set";
  }
  Rng rng(61);
  Linear lin(2, 2, &rng);
  const std::string path = TempPath("env_fault.ckpt");
  Status st = SaveCheckpoint(lin, path);
  EXPECT_FALSE(st.ok()) << "spec '" << spec << "' should fail the save";
  EXPECT_NE(st.ToString().find(path), std::string::npos) << st.ToString();
  EXPECT_FALSE(io::FileExists(path + ".tmp"));
  fault::Clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace crossem
