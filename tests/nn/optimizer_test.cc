#include "nn/optimizer.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace crossem {
namespace {

/// Minimizes f(w) = sum((w - target)^2) and returns the final w.
template <typename OptFactory>
Tensor Minimize(OptFactory make_opt, int steps) {
  Tensor w = Tensor::FromVector({2}, {5.0f, -5.0f});
  w.set_requires_grad(true);
  Tensor target = Tensor::FromVector({2}, {1.0f, 2.0f});
  auto opt = make_opt(std::vector<Tensor>{w});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Tensor d = ops::Sub(w, target);
    ops::Sum(ops::Mul(d, d)).Backward();
    opt->Step();
  }
  return w;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Minimize(
      [](std::vector<Tensor> p) {
        return std::make_unique<nn::Sgd>(std::move(p), 0.1f);
      },
      100);
  EXPECT_NEAR(w.at(0), 1.0f, 1e-3f);
  EXPECT_NEAR(w.at(1), 2.0f, 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  Tensor w = Minimize(
      [](std::vector<Tensor> p) {
        return std::make_unique<nn::Sgd>(std::move(p), 0.05f, 0.9f);
      },
      200);
  EXPECT_NEAR(w.at(0), 1.0f, 1e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = Minimize(
      [](std::vector<Tensor> p) {
        return std::make_unique<nn::Adam>(std::move(p), 0.2f);
      },
      300);
  EXPECT_NEAR(w.at(0), 1.0f, 1e-2f);
  EXPECT_NEAR(w.at(1), 2.0f, 1e-2f);
}

TEST(AdamWTest, DecayPullsWeightsTowardZero) {
  // With pure decay (no loss gradient), AdamW shrinks weights; Adam with
  // wd=0 leaves them unchanged.
  Tensor w1 = Tensor::FromVector({1}, {4.0f});
  w1.set_requires_grad(true);
  nn::AdamW opt1({w1}, /*lr=*/0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  // Provide a zero gradient so only decay acts.
  ops::Sum(ops::MulScalar(w1, 0.0f)).Backward();
  opt1.Step();
  EXPECT_LT(w1.at(0), 4.0f);
}

TEST(OptimizerTest, SkipsFrozenParameters) {
  Rng rng(1);
  nn::Linear lin(2, 2, &rng);
  Tensor before = lin.weight().Clone();
  lin.SetRequiresGrad(false);
  nn::Sgd opt(lin.Parameters(), 0.5f);
  // Even if a gradient buffer existed, a frozen parameter must not move.
  opt.Step();
  EXPECT_EQ(lin.weight().ToVector(), before.ToVector());
}

TEST(OptimizerTest, ZeroGradClears) {
  Tensor w = Tensor::Ones({2});
  w.set_requires_grad(true);
  ops::Sum(w).Backward();
  EXPECT_FLOAT_EQ(w.grad().at(0), 1.0f);
  nn::Sgd opt({w}, 0.1f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(w.grad().at(0), 0.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Tensor w = Tensor::Ones({4});
  w.set_requires_grad(true);
  ops::Sum(ops::MulScalar(w, 10.0f)).Backward();  // grad = 10 each, norm 20
  float norm = nn::ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(norm, 20.0f, 1e-4f);
  float clipped = 0;
  for (int64_t i = 0; i < 4; ++i) {
    clipped += w.grad().at(i) * w.grad().at(i);
  }
  EXPECT_NEAR(std::sqrt(clipped), 1.0f, 1e-4f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor w = Tensor::Ones({2});
  w.set_requires_grad(true);
  ops::Sum(w).Backward();  // grad = 1 each, norm sqrt(2)
  nn::ClipGradNorm({w}, 10.0f);
  EXPECT_FLOAT_EQ(w.grad().at(0), 1.0f);
}

}  // namespace
}  // namespace crossem
