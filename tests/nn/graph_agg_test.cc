#include "nn/graph_agg.h"

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace crossem {
namespace {

TEST(NeighborMeanMatrixTest, RowNormalized) {
  nn::AdjacencyList adj = {{1, 2}, {0}, {}};
  Tensor a = nn::NeighborMeanMatrix(adj);
  EXPECT_EQ(a.shape(), (Shape{3, 3}));
  // Row 0 averages vertices 1 and 2.
  EXPECT_FLOAT_EQ(a.at(0 * 3 + 1), 0.5f);
  EXPECT_FLOAT_EQ(a.at(0 * 3 + 2), 0.5f);
  // Row 1 points only at vertex 0.
  EXPECT_FLOAT_EQ(a.at(1 * 3 + 0), 1.0f);
  // Isolated vertex 2 averages over itself.
  EXPECT_FLOAT_EQ(a.at(2 * 3 + 2), 1.0f);
}

TEST(NeighborMeanMatrixTest, DuplicateNeighborsAccumulate) {
  nn::AdjacencyList adj = {{1, 1}, {0}};
  Tensor a = nn::NeighborMeanMatrix(adj);
  EXPECT_FLOAT_EQ(a.at(0 * 2 + 1), 1.0f);  // 0.5 + 0.5
}

TEST(MeanAggregateTest, AlphaOneIsIdentity) {
  nn::AdjacencyList adj = {{1}, {0}};
  Tensor nm = nn::NeighborMeanMatrix(adj);
  Tensor h = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor out = nn::MeanAggregate(h, nm, 1.0f);
  EXPECT_EQ(out.ToVector(), h.ToVector());
}

TEST(MeanAggregateTest, AlphaZeroIsNeighborMean) {
  nn::AdjacencyList adj = {{1}, {0}};
  Tensor nm = nn::NeighborMeanMatrix(adj);
  Tensor h = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor out = nn::MeanAggregate(h, nm, 0.0f);
  EXPECT_EQ(out.ToVector(), (std::vector<float>{3, 4, 1, 2}));
}

TEST(MeanAggregateTest, BlendsWithAlpha) {
  nn::AdjacencyList adj = {{1}, {0}};
  Tensor nm = nn::NeighborMeanMatrix(adj);
  Tensor h = Tensor::FromVector({2, 1}, {0.0f, 10.0f});
  Tensor out = nn::MeanAggregate(h, nm, 0.3f);
  EXPECT_NEAR(out.at(0), 0.3f * 0.0f + 0.7f * 10.0f, 1e-5f);
  EXPECT_NEAR(out.at(1), 0.3f * 10.0f + 0.7f * 0.0f, 1e-5f);
}

TEST(GraphSageLayerTest, OutputShapeAndGrad) {
  Rng rng(1);
  nn::GraphSageLayer sage(4, 6, &rng);
  nn::AdjacencyList adj = {{1, 2}, {0}, {0, 1}};
  Tensor nm = nn::NeighborMeanMatrix(adj);
  Tensor h = Tensor::Randn({3, 4}, &rng);
  h.set_requires_grad(true);
  Tensor out = sage.Forward(h, nm);
  EXPECT_EQ(out.shape(), (Shape{3, 6}));
  ops::Sum(out).Backward();
  EXPECT_TRUE(h.grad().defined());
  EXPECT_EQ(sage.Parameters().size(), 2u);
}

TEST(GraphSageLayerTest, OutputIsNonNegative) {
  Rng rng(2);
  nn::GraphSageLayer sage(3, 5, &rng);
  nn::AdjacencyList adj = {{1}, {0}};
  Tensor nm = nn::NeighborMeanMatrix(adj);
  Tensor h = Tensor::Randn({2, 3}, &rng);
  Tensor out = sage.Forward(h, nm);
  for (int64_t i = 0; i < out.numel(); ++i) EXPECT_GE(out.at(i), 0.0f);
}

}  // namespace
}  // namespace crossem
