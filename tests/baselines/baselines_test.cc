// Smoke + contract tests for all competitor reimplementations: each must
// fit on a small dataset and emit a well-formed score matrix.
#include <memory>

#include "baselines/common.h"
#include "baselines/dual_encoder.h"
#include "baselines/fusion.h"
#include "baselines/gppt.h"
#include "baselines/imram.h"
#include "baselines/kge.h"
#include "baselines/mkgformer.h"
#include "baselines/transae.h"
#include "clip/pretrain.h"
#include "data/dataset.h"
#include "gtest/gtest.h"

namespace crossem {
namespace baselines {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new data::CrossModalDataset(
        data::BuildDataset(data::CubLikeConfig(0.4)));
    tokenizer_ = new text::Tokenizer(&ds_->vocab, 48);

    ctx_ = new BaselineContext();
    ctx_->dataset = ds_;
    ctx_->tokenizer = tokenizer_;
    for (int64_t c : ds_->test_classes) {
      ctx_->vertices.push_back(ds_->entities[static_cast<size_t>(c)]);
    }
    auto idx = ds_->TestImageIndices();
    ctx_->images = ds_->StackImages(idx);
    for (int64_t i : idx) {
      ctx_->image_classes.push_back(
          ds_->images[static_cast<size_t>(i)].true_class);
    }
    ctx_->seed = 33;

    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 48;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(9);
    clip_model_ = new clip::ClipModel(cc, &rng);
  }

  static void TearDownTestSuite() {
    delete clip_model_;
    delete ctx_;
    delete tokenizer_;
    delete ds_;
  }

  /// Fits the baseline and checks the score-matrix contract.
  static void CheckContract(CrossModalBaseline* baseline) {
    ASSERT_TRUE(baseline->Fit(*ctx_).ok()) << baseline->name();
    auto scores = baseline->Score(*ctx_);
    ASSERT_TRUE(scores.ok()) << baseline->name() << ": "
                             << scores.status().ToString();
    const Tensor& s = scores.value();
    EXPECT_EQ(s.size(0), static_cast<int64_t>(ctx_->vertices.size()));
    EXPECT_EQ(s.size(1), ctx_->images.size(0));
    for (int64_t i = 0; i < s.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(s.at(i))) << baseline->name();
    }
  }

  static data::CrossModalDataset* ds_;
  static text::Tokenizer* tokenizer_;
  static BaselineContext* ctx_;
  static clip::ClipModel* clip_model_;
};

data::CrossModalDataset* BaselineFixture::ds_ = nullptr;
text::Tokenizer* BaselineFixture::tokenizer_ = nullptr;
BaselineContext* BaselineFixture::ctx_ = nullptr;
clip::ClipModel* BaselineFixture::clip_model_ = nullptr;

TEST_F(BaselineFixture, SerializeVertexMentionsNeighbors) {
  graph::VertexId v = ctx_->vertices[0];
  std::string text = SerializeVertex(ds_->graph, v);
  EXPECT_NE(text.find(ds_->graph.VertexLabel(v)), std::string::npos);
  auto nbrs = ds_->graph.Neighbors(v);
  ASSERT_FALSE(nbrs.empty());
  EXPECT_NE(text.find(ds_->graph.VertexLabel(nbrs[0])), std::string::npos);
}

TEST_F(BaselineFixture, MeanPatchesShape) {
  Tensor m = MeanPatches(ctx_->images);
  EXPECT_EQ(m.shape(),
            (Shape{ctx_->images.size(0), ds_->world->config().patch_dim}));
}

TEST_F(BaselineFixture, ClipZeroShotContract) {
  ClipZeroShot b(clip_model_);
  EXPECT_EQ(b.name(), "CLIP");
  CheckContract(&b);
}

TEST_F(BaselineFixture, AlignContract) {
  AlignBaseline b;
  EXPECT_EQ(b.name(), "ALIGN");
  CheckContract(&b);
}

TEST_F(BaselineFixture, VisualBertContract) {
  FusionTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batches_per_epoch = 4;
  VisualBertBaseline b(cfg);
  EXPECT_EQ(b.name(), "VisualBERT");
  CheckContract(&b);
}

TEST_F(BaselineFixture, VilBertContract) {
  FusionTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batches_per_epoch = 4;
  VilBertBaseline b(cfg);
  EXPECT_EQ(b.name(), "ViLBERT");
  CheckContract(&b);
}

TEST_F(BaselineFixture, ImramContract) {
  ImramConfig cfg;
  cfg.epochs = 2;
  cfg.batches_per_epoch = 4;
  ImramBaseline b(cfg);
  EXPECT_EQ(b.name(), "IMRAM");
  CheckContract(&b);
}

TEST_F(BaselineFixture, TransAeContract) {
  TransAeConfig cfg;
  cfg.epochs = 2;
  cfg.batches_per_epoch = 4;
  TransAeBaseline b(cfg);
  EXPECT_EQ(b.name(), "TransAE");
  CheckContract(&b);
}

TEST_F(BaselineFixture, GpptContract) {
  GpptConfig cfg;
  cfg.epochs = 2;
  cfg.batches_per_epoch = 4;
  GpptBaseline b(cfg);
  EXPECT_EQ(b.name(), "GPPT");
  CheckContract(&b);
}

class KgeParamTest : public BaselineFixture,
                     public ::testing::WithParamInterface<KgeScoreFn> {};

TEST_P(KgeParamTest, Contract) {
  KgeConfig cfg;
  cfg.score_fn = GetParam();
  cfg.epochs = 3;
  cfg.batches_per_epoch = 6;
  KgeBaseline b(cfg);
  CheckContract(&b);
}

INSTANTIATE_TEST_SUITE_P(
    AllScoreFns, KgeParamTest,
    ::testing::Values(KgeScoreFn::kTransE, KgeScoreFn::kDistMult,
                      KgeScoreFn::kRotatE, KgeScoreFn::kRsme),
    [](const ::testing::TestParamInfo<KgeScoreFn>& info) {
      return KgeScoreFnName(info.param);
    });

TEST_F(BaselineFixture, KgeNamesMatchScoreFn) {
  EXPECT_EQ(KgeBaseline(KgeConfig{KgeScoreFn::kTransE}).name(), "TransE");
  EXPECT_EQ(KgeBaseline(KgeConfig{KgeScoreFn::kDistMult}).name(), "DistMult");
  EXPECT_EQ(KgeBaseline(KgeConfig{KgeScoreFn::kRotatE}).name(), "RotatE");
  EXPECT_EQ(KgeBaseline(KgeConfig{KgeScoreFn::kRsme}).name(), "RSME");
}

TEST_F(BaselineFixture, MkgFormerContract) {
  MkgFormerConfig cfg;
  cfg.epochs = 2;
  cfg.batches_per_epoch = 4;
  MkgFormerBaseline b(cfg);
  EXPECT_EQ(b.name(), "MKGformer");
  CheckContract(&b);
}

TEST_F(BaselineFixture, ScoreBeforeFitFails) {
  AlignBaseline align;
  EXPECT_FALSE(align.Score(*ctx_).ok());
  ImramConfig icfg;
  ImramBaseline imram(icfg);
  EXPECT_FALSE(imram.Score(*ctx_).ok());
  KgeBaseline kge;
  EXPECT_FALSE(kge.Score(*ctx_).ok());
}

TEST_F(BaselineFixture, KgeRejectsMisalignedImageClasses) {
  BaselineContext bad = *ctx_;
  bad.image_classes.pop_back();
  KgeBaseline b;
  EXPECT_FALSE(b.Fit(bad).ok());
}

TEST_F(BaselineFixture, FitRejectsIncompleteContext) {
  BaselineContext empty;
  AlignBaseline align;
  EXPECT_FALSE(align.Fit(empty).ok());
  VisualBertBaseline vb;
  EXPECT_FALSE(vb.Fit(empty).ok());
  GpptBaseline gppt;
  EXPECT_FALSE(gppt.Fit(empty).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace crossem
