// Determinism of tensor ops under the parallel runtime: forward values and
// gradients must be bitwise-identical with 1 and 8 threads (the fixed-grain
// chunking contract in util/parallel.h).
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/parallel.h"

namespace crossem {
namespace {

/// Runs `fn` under 1 and then 8 threads and returns both flat outputs
/// (forward values followed by all input gradients).
std::pair<std::vector<float>, std::vector<float>> RunBothThreadCounts(
    const std::function<std::vector<float>()>& fn) {
  SetNumThreads(1);
  std::vector<float> one = fn();
  SetNumThreads(8);
  std::vector<float> eight = fn();
  SetNumThreads(0);
  return {std::move(one), std::move(eight)};
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ (not NEAR): the determinism contract is bitwise.
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

void Append(std::vector<float>* out, const Tensor& t) {
  std::vector<float> v = t.ToVector();
  out->insert(out->end(), v.begin(), v.end());
}

TEST(ParallelOpsDeterminismTest, MatMulForwardAndGrad) {
  auto run = [] {
    Rng rng(11);
    Tensor a = Tensor::Randn({3, 96, 40}, &rng, 1.0f, true);
    Tensor b = Tensor::Randn({40, 56}, &rng, 1.0f, true);
    Tensor c = ops::MatMul(a, b);
    ops::Sum(ops::Mul(c, c)).Backward();
    std::vector<float> flat;
    Append(&flat, c);
    Append(&flat, a.grad());
    Append(&flat, b.grad());
    return flat;
  };
  auto [one, eight] = RunBothThreadCounts(run);
  ExpectBitwiseEqual(one, eight);
}

TEST(ParallelOpsDeterminismTest, BatchedMatMulForwardAndGrad) {
  auto run = [] {
    Rng rng(12);
    Tensor a = Tensor::Randn({4, 32, 24}, &rng, 1.0f, true);
    Tensor b = Tensor::Randn({4, 24, 48}, &rng, 1.0f, true);
    Tensor c = ops::MatMul(a, b);
    ops::Sum(c).Backward();
    std::vector<float> flat;
    Append(&flat, c);
    Append(&flat, a.grad());
    Append(&flat, b.grad());
    return flat;
  };
  auto [one, eight] = RunBothThreadCounts(run);
  ExpectBitwiseEqual(one, eight);
}

TEST(ParallelOpsDeterminismTest, SumForwardAndGrad) {
  auto run = [] {
    Rng rng(13);
    Tensor x = Tensor::Randn({50'000}, &rng, 1.0f, true);
    Tensor s = ops::Sum(x);
    s.Backward();
    std::vector<float> flat;
    Append(&flat, s);
    Append(&flat, x.grad());
    return flat;
  };
  auto [one, eight] = RunBothThreadCounts(run);
  ExpectBitwiseEqual(one, eight);
}

TEST(ParallelOpsDeterminismTest, SoftmaxForwardAndGrad) {
  auto run = [] {
    Rng rng(14);
    Tensor x = Tensor::Randn({300, 64}, &rng, 1.0f, true);
    Tensor y = ops::Softmax(x);
    ops::Sum(ops::Mul(y, y)).Backward();
    std::vector<float> flat;
    Append(&flat, y);
    Append(&flat, x.grad());
    return flat;
  };
  auto [one, eight] = RunBothThreadCounts(run);
  ExpectBitwiseEqual(one, eight);
}

TEST(ParallelOpsDeterminismTest, ElementwiseAndReductionChain) {
  auto run = [] {
    Rng rng(15);
    Tensor a = Tensor::Randn({64, 256}, &rng, 1.0f, true);
    Tensor b = Tensor::Randn({64, 256}, &rng, 1.0f, true);
    Tensor y = ops::L2Normalize(ops::Gelu(ops::Add(ops::Mul(a, b), a)));
    Tensor loss = ops::Sum(ops::Mean(y, -1, false));
    loss.Backward();
    std::vector<float> flat;
    Append(&flat, y);
    Append(&flat, loss);
    Append(&flat, a.grad());
    Append(&flat, b.grad());
    return flat;
  };
  auto [one, eight] = RunBothThreadCounts(run);
  ExpectBitwiseEqual(one, eight);
}

TEST(ParallelOpsDeterminismTest, GemmTransposedLayoutsMatchReference) {
  // The packed/blocked kernel must agree with a plain triple loop on every
  // layout combination (within float tolerance: accumulation order along k
  // is unchanged, so it is in fact exact).
  Rng rng(16);
  const int64_t m = 37, k = 53, n = 29;
  Tensor a = Tensor::Randn({m, k}, &rng);
  Tensor bt = Tensor::Randn({n, k}, &rng);  // physically transposed B
  Tensor c = ops::MatMul(a, ops::Transpose(bt, 0, 1));
  const float* av = a.data();
  const float* bv = bt.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float ref = 0.0f;
      for (int64_t p = 0; p < k; ++p) ref += av[i * k + p] * bv[j * k + p];
      EXPECT_NEAR(c.at(i * n + j), ref, 1e-4f);
    }
  }
}

}  // namespace
}  // namespace crossem
