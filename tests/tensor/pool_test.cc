// Tensor buffer pool: reuse, counters, escape hatch, zero-fill contract,
// ToVector move-out, and concurrent Fit-style steps hammering one pool
// (the *Pool* filter runs this file under TSan with an 8-thread runtime).
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace crossem {
namespace {

using internal::TensorPool;

// Every test leaves the pool enabled (the process default unless
// CROSSEM_TENSOR_POOL=0, which the suite overrides for determinism).
class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TensorPool::SetEnabled(true);
    TensorPool::Instance().Clear();
  }
  void TearDown() override { TensorPool::SetEnabled(true); }
};

TEST_F(PoolTest, ReusesReleasedBufferAndCountsHit) {
  auto& pool = TensorPool::Instance();
  const float* first_ptr = nullptr;
  const int64_t misses0 = pool.misses();
  {
    Tensor t = Tensor::Zeros({1000});
    first_ptr = t.data();
  }
  EXPECT_GT(pool.misses(), misses0);  // cold acquire missed

  const int64_t hits0 = pool.hits();
  Tensor again = Tensor::Zeros({1000});
  EXPECT_GT(pool.hits(), hits0);
  // The freed buffer came straight back (vector moves preserve the
  // allocation).
  EXPECT_EQ(again.data(), first_ptr);
}

TEST_F(PoolTest, ReusedBuffersComeBackZeroFilled) {
  {
    Tensor t = Tensor::Full({257}, 3.5f);
    ASSERT_EQ(t.at(0), 3.5f);
  }
  Tensor reused = Tensor::Zeros({257});
  for (int64_t i = 0; i < reused.numel(); ++i) {
    ASSERT_EQ(reused.at(i), 0.0f) << "stale data at " << i;
  }
}

TEST_F(PoolTest, SmallerRequestReusesLargerBucketBuffer) {
  auto& pool = TensorPool::Instance();
  { Tensor t = Tensor::Zeros({1024}); }
  const int64_t hits0 = pool.hits();
  // 600 rounds up to the same 1024-capacity bucket.
  Tensor t = Tensor::Zeros({600});
  EXPECT_EQ(t.numel(), 600);
  EXPECT_GT(pool.hits(), hits0);
}

TEST_F(PoolTest, DisabledPoolBypassesFreelists) {
  TensorPool::SetEnabled(false);
  ASSERT_FALSE(TensorPool::Enabled());
  auto& pool = TensorPool::Instance();
  const int64_t hits0 = pool.hits();
  const int64_t misses0 = pool.misses();
  {
    Tensor t = Tensor::Zeros({512});
  }
  Tensor u = Tensor::Zeros({512});
  EXPECT_EQ(pool.hits(), hits0);
  EXPECT_EQ(pool.misses(), misses0);
}

TEST_F(PoolTest, CountersMirroredToObsRegistry) {
  auto& pool = TensorPool::Instance();
  auto& registry = obs::MetricsRegistry::Default();
  { Tensor t = Tensor::Zeros({64}); }
  Tensor u = Tensor::Zeros({64});
  EXPECT_EQ(registry.GetCounter("tensor_pool_hits_total")->Value(),
            pool.hits());
  EXPECT_EQ(registry.GetCounter("tensor_pool_misses_total")->Value(),
            pool.misses());
}

TEST_F(PoolTest, ToVectorMoveOutStealsUniquelyOwnedBuffer) {
  Tensor t = Tensor::FromVector({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  const float* ptr = t.data();
  std::vector<float> v = std::move(t).ToVector();
  EXPECT_EQ(v, (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
  EXPECT_EQ(v.data(), ptr);    // stolen, not copied
  EXPECT_FALSE(t.defined());   // tensor is consumed
}

TEST_F(PoolTest, ToVectorMoveOutCopiesWhenAliased) {
  Tensor t = Tensor::FromVector({3}, {5.0f, 6.0f, 7.0f});
  Tensor alias = t.Detach();  // shares storage
  std::vector<float> v = std::move(t).ToVector();
  EXPECT_EQ(v, (std::vector<float>{5.0f, 6.0f, 7.0f}));
  EXPECT_NE(v.data(), alias.data());  // fell back to a copy
  EXPECT_EQ(alias.at(0), 5.0f);       // alias untouched
}

TEST_F(PoolTest, ConcurrentFitStepsShareOnePool) {
  constexpr int kThreads = 4;
  constexpr int kSteps = 10;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      Rng rng(100 + w);
      nn::Linear lin(16, 16, &rng);
      nn::LayerNorm ln(16);
      Tensor x = Tensor::Randn({8, 16}, &rng);
      x.set_requires_grad(true);
      for (int s = 0; s < kSteps; ++s) {
        x.ZeroGrad();
        lin.ZeroGrad();
        ln.ZeroGrad();
        Tensor y = ln.Forward(lin.Forward(x, ops::BiasAct::kGelu));
        ops::Sum(y).Backward();
      }
      EXPECT_TRUE(x.grad().defined());
    });
  }
  for (auto& t : workers) t.join();
  // Steady-state steps on every thread should be serviced from freelists.
  EXPECT_GT(TensorPool::Instance().hits(), 0);
}

}  // namespace
}  // namespace crossem
