// ExecutionPlan lifecycle (tensor/plan.h): trace-once/replay-many must be
// bitwise-identical to eager for forward and backward schedules, slots
// must be re-read on every replay, and a plan must refuse to replay when
// the capture was incomplete, the kernel table changed, or its bound
// parameters were reallocated. Concurrent trace+replay from independent
// threads is exercised for the race detector (plan state is thread-local
// by design).
#include "tensor/plan.h"

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/parallel.h"

namespace crossem {
namespace {

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name)->Value();
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override { plan::SetEnabled(true); }
  void TearDown() override {
    SetNumThreads(0);
    ops::SetGemmKernel(ops::GemmKernel::kBlocked);
    ops::SetFusedKernels(ops::FusedKernels::kFused);
  }
};

/// y = softmax(x W) — every op on the path records a closure.
Tensor SmallForward(const Tensor& x, const Tensor& w) {
  return ops::Softmax(ops::MatMul(x, w));
}

TEST_F(PlanTest, ReplayMatchesEagerBitwise) {
  Rng rng(7);
  Tensor w = Tensor::Randn({8, 6}, &rng);
  Tensor x = Tensor::Zeros({4, 8});  // write-in input
  Rng fill(11);
  Tensor step0 = Tensor::Randn({4, 8}, &fill);
  Tensor step1 = Tensor::Randn({4, 8}, &fill);

  std::memcpy(x.data(), step0.data(), sizeof(float) * 32);
  plan::ExecutionPlan p;
  Tensor out;
  {
    NoGradGuard guard;
    plan::CaptureScope scope(&p);
    out = SmallForward(x, w);
  }
  ASSERT_TRUE(p.complete());
  EXPECT_GT(p.num_ops(), 0);
  {
    NoGradGuard guard;
    EXPECT_EQ(out.ToVector(), SmallForward(step0, w).ToVector());
  }

  // New step data flows through the write-in buffer; replay must equal a
  // fresh eager forward over the same values, bit for bit, at 1 and 8
  // threads (the parallel runtime's determinism contract).
  for (int threads : {1, 8}) {
    SetNumThreads(threads);
    std::memcpy(x.data(), step1.data(), sizeof(float) * 32);
    p.Replay();
    NoGradGuard guard;
    EXPECT_EQ(out.ToVector(), SmallForward(step1, w).ToVector())
        << threads << " threads";
  }
}

TEST_F(PlanTest, BackwardReplayMatchesEagerBitwise) {
  Rng rng(3);
  Tensor init_w = Tensor::Randn({8, 6}, &rng);
  Rng fill(5);
  Tensor step0 = Tensor::Randn({4, 8}, &fill);
  Tensor step1 = Tensor::Randn({4, 8}, &fill);

  // Planned: trace the forward, record the backward tape from the first
  // eager Backward(), then replay both for the second step.
  Tensor w = init_w.Clone().set_requires_grad(true);
  Tensor x = Tensor::Zeros({4, 8});
  plan::ExecutionPlan p;
  Tensor loss;
  std::memcpy(x.data(), step0.data(), sizeof(float) * 32);
  {
    plan::CaptureScope scope(&p);
    loss = ops::Mean(ops::Mul(SmallForward(x, w), SmallForward(x, w)));
  }
  ASSERT_TRUE(p.complete());
  ASSERT_FALSE(p.has_backward());
  {
    plan::CaptureScope scope(&p);
    loss.Backward();
  }
  ASSERT_TRUE(p.has_backward());

  std::vector<float> grad_step0 = w.grad().ToVector();
  w.ZeroGrad();
  std::memcpy(x.data(), step1.data(), sizeof(float) * 32);
  p.Replay();
  p.ReplayBackward();
  std::vector<float> grad_step1 = w.grad().ToVector();

  // Eager reference: fresh graphs over the same values.
  for (int step = 0; step < 2; ++step) {
    Tensor w2 = init_w.Clone().set_requires_grad(true);
    Tensor x2 = (step == 0 ? step0 : step1).Clone();
    Tensor l2 = ops::Mean(ops::Mul(SmallForward(x2, w2), SmallForward(x2, w2)));
    l2.Backward();
    EXPECT_EQ(w2.grad().ToVector(), step == 0 ? grad_step0 : grad_step1)
        << "step " << step;
  }
}

TEST_F(PlanTest, IndexSlotRereadOnEveryReplay) {
  Tensor a = Tensor::FromVector(
      {4, 2}, {0, 1, 10, 11, 20, 21, 30, 31});
  plan::IndexSlot slot = plan::MakeIndexSlot({0, 2});
  plan::ExecutionPlan p;
  Tensor out;
  {
    NoGradGuard guard;
    plan::CaptureScope scope(&p);
    out = ops::IndexSelectSlot(a, slot);
  }
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(out.ToVector(), (std::vector<float>{0, 1, 20, 21}));

  *slot = {3, 1};  // host rewrites the slot between replays
  p.Replay();
  EXPECT_EQ(out.ToVector(), (std::vector<float>{30, 31, 10, 11}));
}

TEST_F(PlanTest, UninstrumentedOpMarksCaptureIncomplete) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Rng rng(23);
  plan::ExecutionPlan p;
  {
    NoGradGuard guard;
    plan::CaptureScope scope(&p);
    // Dropout draws a fresh mask per step, so it (correctly) records no
    // closure; the capture must flag itself incomplete rather than
    // silently replay a frozen mask.
    ops::Dropout(a, 0.5f, /*training=*/true, &rng);
  }
  EXPECT_FALSE(p.complete());
  const int64_t before =
      CounterValue("plan_invalidations_incomplete_capture_total");
  std::string reason;
  EXPECT_FALSE(p.Validate(&reason));
  EXPECT_NE(reason.find("incomplete"), std::string::npos) << reason;
  EXPECT_EQ(CounterValue("plan_invalidations_incomplete_capture_total"),
            before + 1);
}

TEST_F(PlanTest, KernelTableChangeInvalidates) {
  Rng rng(9);
  Tensor w = Tensor::Randn({4, 4}, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  plan::ExecutionPlan p;
  {
    NoGradGuard guard;
    plan::CaptureScope scope(&p);
    ops::MatMul(x, w);
  }
  std::string reason;
  ASSERT_TRUE(p.Validate(&reason)) << reason;

  const int64_t before = CounterValue("plan_invalidations_kernel_table_total");
  ops::SetGemmKernel(ops::GemmKernel::kReference);
  EXPECT_FALSE(p.Validate(&reason));
  EXPECT_NE(reason.find("kernel table"), std::string::npos) << reason;
  EXPECT_EQ(CounterValue("plan_invalidations_kernel_table_total"), before + 1);

  // Restoring the traced table makes the plan valid again.
  ops::SetGemmKernel(ops::GemmKernel::kBlocked);
  EXPECT_TRUE(p.Validate(&reason)) << reason;
}

TEST_F(PlanTest, StaleParamBindingInvalidates) {
  Rng rng(13);
  Tensor w = Tensor::Randn({4, 4}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  plan::ExecutionPlan p;
  {
    NoGradGuard guard;
    plan::CaptureScope scope(&p);
    ops::MatMul(x, w);
  }
  p.BindParams({w});
  std::string reason;
  ASSERT_TRUE(p.Validate(&reason)) << reason;

  // Reallocate the parameter's storage out from under the traced
  // closures (what an in-place checkpoint restore must never do, and
  // what Validate() exists to catch if anything does).
  const int64_t before = CounterValue("plan_invalidations_stale_params_total");
  auto fresh = std::make_shared<internal::Storage>(w.numel());
  std::memcpy(fresh->data(), w.data(), sizeof(float) * 16);
  w.impl()->storage = fresh;
  EXPECT_FALSE(p.Validate(&reason));
  EXPECT_NE(reason.find("stale"), std::string::npos) << reason;
  EXPECT_EQ(CounterValue("plan_invalidations_stale_params_total"), before + 1);
}

TEST_F(PlanTest, TraceCountedOncePerPlanAndReplaysCounted) {
  Rng rng(17);
  Tensor w = Tensor::Randn({4, 4}, &rng);
  Tensor x = Tensor::Zeros({2, 4});
  const int64_t traces = CounterValue("plan_traces_total");
  const int64_t replays = CounterValue("plan_replays_total");

  plan::ExecutionPlan p;
  {
    NoGradGuard guard;
    plan::CaptureScope scope(&p);
    SmallForward(x, w);
  }
  {
    // Re-opening a scope on the same plan (the fit-step planner does this
    // to record the backward) is still ONE trace of one plan.
    NoGradGuard guard;
    plan::CaptureScope scope(&p);
  }
  EXPECT_EQ(CounterValue("plan_traces_total"), traces + 1);

  p.Replay();
  p.Replay();
  EXPECT_EQ(CounterValue("plan_replays_total"), replays + 2);
}

TEST_F(PlanTest, ConcurrentTraceAndReplayPerThread) {
  // Capture state is thread-local: four threads trace and replay their
  // own plans concurrently over private buffers. Run under TSan via the
  // plan_tsan ctest entry; bitwise checks keep it meaningful elsewhere.
  constexpr int kThreads = 4;
  constexpr int kReplays = 25;
  std::vector<std::thread> workers;
  std::vector<std::string> errors(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &errors] {
      Rng rng(100 + static_cast<uint64_t>(t));
      Tensor w = Tensor::Randn({8, 6}, &rng);
      Tensor x = Tensor::Zeros({4, 8});
      Rng fill(200 + static_cast<uint64_t>(t));
      plan::ExecutionPlan p;
      Tensor out;
      Tensor step = Tensor::Randn({4, 8}, &fill);
      std::memcpy(x.data(), step.data(), sizeof(float) * 32);
      {
        NoGradGuard guard;
        plan::CaptureScope scope(&p);
        out = SmallForward(x, w);
      }
      if (!p.complete()) {
        errors[static_cast<size_t>(t)] = "incomplete capture";
        return;
      }
      for (int r = 0; r < kReplays; ++r) {
        Tensor next = Tensor::Randn({4, 8}, &fill);
        std::memcpy(x.data(), next.data(), sizeof(float) * 32);
        p.Replay();
        NoGradGuard guard;
        if (out.ToVector() != SmallForward(next, w).ToVector()) {
          errors[static_cast<size_t>(t)] = "replay diverged from eager";
          return;
        }
      }
    });
  }
  for (std::thread& th : workers) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[static_cast<size_t>(t)].empty())
        << "thread " << t << ": " << errors[static_cast<size_t>(t)];
  }
}

}  // namespace
}  // namespace crossem
