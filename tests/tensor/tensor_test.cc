#include "tensor/tensor.h"

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "util/memory_tracker.h"

namespace crossem {
namespace {

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeNumel({3}), 3);
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({5, 0}), 0);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.at(i), 0.0f);

  Tensor o = Tensor::Ones({4});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.at(i), 1.0f);

  Tensor f = Tensor::Full({2}, 3.5f);
  EXPECT_EQ(f.at(0), 3.5f);
  EXPECT_EQ(f.at(1), 3.5f);
}

TEST(TensorTest, FromVectorRoundTrip) {
  std::vector<float> v = {1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::FromVector({2, 3}, v);
  EXPECT_EQ(t.ToVector(), v);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(-1), 3);
}

TEST(TensorTest, ScalarItem) {
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_FLOAT_EQ(s.item(), 2.5f);
}

TEST(TensorTest, RandnIsSeeded) {
  Rng rng1(7);
  Rng rng2(7);
  Tensor a = Tensor::Randn({16}, &rng1);
  Tensor b = Tensor::Randn({16}, &rng2);
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(TensorTest, RandRange) {
  Rng rng(3);
  Tensor t = Tensor::Rand({100}, &rng, -2.0f, 2.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.at(i), -2.0f);
    EXPECT_LT(t.at(i), 2.0f);
  }
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;  // shared handle semantics
  b.data()[0] = 5.0f;
  EXPECT_EQ(a.at(0), 5.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Ones({3});
  Tensor b = a.Clone();
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
  EXPECT_EQ(b.at(0), 9.0f);
}

TEST(TensorTest, DetachSharesDataButNoGrad) {
  Tensor a = Tensor::Ones({2});
  a.set_requires_grad(true);
  Tensor b = ops::MulScalar(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at(0), 2.0f);
}

TEST(AutogradTest, SimpleChain) {
  // y = sum(2x + 1); dy/dx = 2 everywhere.
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  x.set_requires_grad(true);
  Tensor y = ops::Sum(ops::AddScalar(ops::MulScalar(x, 2.0f), 1.0f));
  EXPECT_FLOAT_EQ(y.item(), 15.0f);
  y.Backward();
  Tensor g = x.grad();
  ASSERT_TRUE(g.defined());
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(g.at(i), 2.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackward) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  Tensor y1 = ops::Sum(x);
  y1.Backward();
  Tensor y2 = ops::Sum(x);
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 2.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().at(0), 0.0f);
}

TEST(AutogradTest, DiamondDependency) {
  // y = sum(x*x + x*x) -> dy/dx = 4x.
  Tensor x = Tensor::FromVector({2}, {1.0f, 3.0f});
  x.set_requires_grad(true);
  Tensor sq = ops::Mul(x, x);
  Tensor y = ops::Sum(ops::Add(sq, sq));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 4.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1), 12.0f);
}

TEST(AutogradTest, NoGradGuardStopsTaping) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  {
    NoGradGuard guard;
    Tensor y = ops::MulScalar(x, 3.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor z = ops::MulScalar(x, 3.0f);
  EXPECT_TRUE(z.requires_grad());
}

TEST(AutogradTest, DetachBlocksGradientFlow) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  Tensor y = ops::Sum(ops::Mul(ops::MulScalar(x, 2.0f).Detach(), x));
  y.Backward();
  // d/dx of (c * x) where c = 2x detached -> just c = 2.
  EXPECT_FLOAT_EQ(x.grad().at(0), 2.0f);
}

TEST(MemoryTrackerTest, TracksTensorAllocations) {
  auto& tracker = MemoryTracker::Instance();
  const int64_t before = tracker.current_bytes();
  {
    Tensor t = Tensor::Zeros({1024});
    EXPECT_GE(tracker.current_bytes(), before + 4096);
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(MemoryTrackerTest, PeakScopeObservesHighWaterMark) {
  PeakMemoryScope scope;
  const int64_t base = MemoryTracker::Instance().current_bytes();
  { Tensor t = Tensor::Zeros({2048}); }
  EXPECT_GE(scope.PeakBytes(), base + 8192);
}

}  // namespace
}  // namespace crossem
