// Fused kernels vs their composed-op reference graphs. The contract is
// stronger than "close": each fused kernel replays the composed graph's
// per-element arithmetic in the same order, so forward values and every
// gradient must match bitwise (which trivially satisfies the 1e-5 budget
// the training loop actually needs).
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace crossem {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << what << " diverges at " << i;
  }
}

/// Restores the process-wide fused-kernel mode on scope exit.
struct FusedModeGuard {
  ops::FusedKernels prev = ops::GetFusedKernels();
  ~FusedModeGuard() { ops::SetFusedKernels(prev); }
};

Tensor CloneLeaf(const Tensor& src, bool requires_grad) {
  Tensor t = Tensor::FromVector(src.shape(), src.ToVector());
  t.set_requires_grad(requires_grad);
  return t;
}

TEST(FusedOpsTest, LayerNormFusedMatchesComposedForwardAndBackward) {
  Rng rng(11);
  const float eps = 1e-5f;
  Tensor x0 = Tensor::Randn({5, 7, 16}, &rng);
  Tensor g0 = Tensor::Randn({16}, &rng);
  Tensor b0 = Tensor::Randn({16}, &rng);
  Tensor w = Tensor::Randn({5, 7, 16}, &rng);  // upstream grad shaper

  auto composed = [&](const Tensor& x, const Tensor& gamma,
                      const Tensor& beta) {
    Tensor mean = ops::Mean(x, -1, /*keepdim=*/true);
    Tensor centered = ops::Sub(x, mean);
    Tensor var = ops::Mean(ops::Mul(centered, centered), -1, true);
    Tensor inv_std = ops::Pow(ops::AddScalar(var, eps), -0.5f);
    Tensor normalized = ops::Mul(centered, inv_std);
    return ops::Add(ops::Mul(normalized, gamma), beta);
  };

  Tensor xr = CloneLeaf(x0, true);
  Tensor gr = CloneLeaf(g0, true);
  Tensor br = CloneLeaf(b0, true);
  Tensor yr = composed(xr, gr, br);
  ops::Sum(ops::Mul(yr, w.Detach())).Backward();

  Tensor xf = CloneLeaf(x0, true);
  Tensor gf = CloneLeaf(g0, true);
  Tensor bf = CloneLeaf(b0, true);
  Tensor yf = ops::LayerNormFused(xf, gf, bf, eps);
  ops::Sum(ops::Mul(yf, w.Detach())).Backward();

  ExpectBitwiseEqual(yf, yr, "layer_norm forward");
  ExpectBitwiseEqual(xf.grad(), xr.grad(), "layer_norm dx");
  ExpectBitwiseEqual(gf.grad(), gr.grad(), "layer_norm dgamma");
  ExpectBitwiseEqual(bf.grad(), br.grad(), "layer_norm dbeta");
}

TEST(FusedOpsTest, LayerNormFusedFrozenInputStillTrainsGain) {
  Rng rng(12);
  Tensor x0 = Tensor::Randn({4, 8}, &rng);
  Tensor g0 = Tensor::Randn({8}, &rng);
  Tensor b0 = Tensor::Randn({8}, &rng);

  Tensor gr = CloneLeaf(g0, true);
  Tensor br = CloneLeaf(b0, true);
  {
    Tensor x = CloneLeaf(x0, false);
    Tensor mean = ops::Mean(x, -1, true);
    Tensor centered = ops::Sub(x, mean);
    Tensor var = ops::Mean(ops::Mul(centered, centered), -1, true);
    Tensor inv_std = ops::Pow(ops::AddScalar(var, 1e-5f), -0.5f);
    ops::Sum(ops::Add(ops::Mul(ops::Mul(centered, inv_std), gr), br))
        .Backward();
  }
  Tensor gf = CloneLeaf(g0, true);
  Tensor bf = CloneLeaf(b0, true);
  Tensor xf = CloneLeaf(x0, false);
  ops::Sum(ops::LayerNormFused(xf, gf, bf, 1e-5f)).Backward();

  ExpectBitwiseEqual(gf.grad(), gr.grad(), "frozen-x dgamma");
  ExpectBitwiseEqual(bf.grad(), br.grad(), "frozen-x dbeta");
  EXPECT_FALSE(xf.grad().defined());
}

TEST(FusedOpsTest, ScaledSoftmaxMatchesComposedNoMask) {
  Rng rng(13);
  const float scale = 0.25f;
  Tensor x0 = Tensor::Randn({6, 9}, &rng);
  Tensor w = Tensor::Randn({6, 9}, &rng);

  Tensor xr = CloneLeaf(x0, true);
  Tensor yr = ops::Softmax(ops::MulScalar(xr, scale));
  ops::Sum(ops::Mul(yr, w.Detach())).Backward();

  Tensor xf = CloneLeaf(x0, true);
  Tensor yf = ops::ScaledMaskedSoftmax(xf, scale);
  ops::Sum(ops::Mul(yf, w.Detach())).Backward();

  ExpectBitwiseEqual(yf, yr, "scaled softmax forward");
  ExpectBitwiseEqual(xf.grad(), xr.grad(), "scaled softmax dx");
}

TEST(FusedOpsTest, ScaledMaskedSoftmaxMatchesComposedWithMask) {
  Rng rng(14);
  const float scale = 1.0f / std::sqrt(4.0f);
  Tensor x0 = Tensor::Randn({2, 3, 4, 6}, &rng);
  Tensor mask = Tensor::Ones({2, 6});
  float* mp = mask.data();
  mp[4] = 0.0f;  // batch 0 pads keys 4,5
  mp[5] = 0.0f;
  mp[6 + 5] = 0.0f;  // batch 1 pads key 5
  Tensor w = Tensor::Randn({2, 3, 4, 6}, &rng);

  Tensor xr = CloneLeaf(x0, true);
  Tensor sr = ops::MulScalar(xr, scale);
  Tensor bias = ops::MulScalar(ops::AddScalar(mask.Detach(), -1.0f), 1e9f);
  bias = ops::Reshape(bias, {2, 1, 1, 6});
  Tensor yr = ops::Softmax(ops::Add(sr, bias));
  ops::Sum(ops::Mul(yr, w.Detach())).Backward();

  Tensor xf = CloneLeaf(x0, true);
  Tensor yf = ops::ScaledMaskedSoftmax(xf, scale, mask);
  ops::Sum(ops::Mul(yf, w.Detach())).Backward();

  ExpectBitwiseEqual(yf, yr, "masked softmax forward");
  ExpectBitwiseEqual(xf.grad(), xr.grad(), "masked softmax dx");
  // Masked keys carry (numerically) zero attention.
  for (int64_t h = 0; h < 3; ++h) {
    for (int64_t q = 0; q < 4; ++q) {
      const int64_t row = ((0 * 3 + h) * 4 + q) * 6;
      EXPECT_NEAR(yf.at(row + 4), 0.0f, 1e-12f);
      EXPECT_NEAR(yf.at(row + 5), 0.0f, 1e-12f);
    }
  }
}

TEST(FusedOpsTest, BiasActivationMatchesComposedAllActivations) {
  Rng rng(15);
  Tensor x0 = Tensor::Randn({6, 9}, &rng);
  Tensor b0 = Tensor::Randn({9}, &rng);
  Tensor w = Tensor::Randn({6, 9}, &rng);

  const ops::BiasAct acts[] = {ops::BiasAct::kNone, ops::BiasAct::kRelu,
                               ops::BiasAct::kGelu};
  for (ops::BiasAct act : acts) {
    Tensor xr = CloneLeaf(x0, true);
    Tensor br = CloneLeaf(b0, true);
    Tensor yr = ops::Add(xr, br);
    if (act == ops::BiasAct::kRelu) yr = ops::Relu(yr);
    if (act == ops::BiasAct::kGelu) yr = ops::Gelu(yr);
    ops::Sum(ops::Mul(yr, w.Detach())).Backward();

    Tensor xf = CloneLeaf(x0, true);
    Tensor bf = CloneLeaf(b0, true);
    Tensor yf = ops::BiasActivation(xf, bf, act);
    ops::Sum(ops::Mul(yf, w.Detach())).Backward();

    ExpectBitwiseEqual(yf, yr, "bias_act forward");
    ExpectBitwiseEqual(xf.grad(), xr.grad(), "bias_act dx");
    ExpectBitwiseEqual(bf.grad(), br.grad(), "bias_act dbias");
  }
}

// The nn layers must produce identical values whichever path the toggle
// selects — this is what lets CROSSEM_FUSED_KERNELS flip a trained run
// without changing its numbers.
TEST(FusedOpsTest, AttentionBlockTogglesBitwiseInvisibly) {
  FusedModeGuard guard;
  Rng rng(16);
  nn::TransformerBlock block(16, 2, 32, &rng);
  Tensor x = Tensor::Randn({2, 5, 16}, &rng);
  Tensor mask = Tensor::Ones({2, 5});
  mask.data()[5 + 4] = 0.0f;  // batch 1 pads its last position

  ops::SetFusedKernels(ops::FusedKernels::kReference);
  Tensor yr;
  {
    NoGradGuard no_grad;
    yr = block.Forward(x, mask);
  }
  ops::SetFusedKernels(ops::FusedKernels::kFused);
  Tensor yf;
  {
    NoGradGuard no_grad;
    yf = block.Forward(x, mask);
  }
  ExpectBitwiseEqual(yf, yr, "transformer block fused-vs-reference");
}

TEST(FusedOpsTest, MatMulTransBMatchesTransposedMatMul) {
  Rng rng(17);
  Tensor a0 = Tensor::Randn({7, 12}, &rng);
  Tensor b0 = Tensor::Randn({9, 12}, &rng);  // natural [n, k] layout
  Tensor w = Tensor::Randn({7, 9}, &rng);

  Tensor ar = CloneLeaf(a0, true);
  Tensor br = CloneLeaf(b0, true);
  Tensor yr = ops::MatMul(ar, ops::Transpose(br, 0, 1));
  ops::Sum(ops::Mul(yr, w.Detach())).Backward();

  Tensor af = CloneLeaf(a0, true);
  Tensor bf = CloneLeaf(b0, true);
  Tensor yf = ops::MatMulTransB(af, bf);
  ops::Sum(ops::Mul(yf, w.Detach())).Backward();

  ExpectBitwiseEqual(yf, yr, "matmul_trans_b forward");
  ExpectBitwiseEqual(af.grad(), ar.grad(), "matmul_trans_b dA");
  ExpectBitwiseEqual(bf.grad(), br.grad(), "matmul_trans_b dB");
}

}  // namespace
}  // namespace crossem
