#include "tensor/ops.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "testing/gradcheck.h"

namespace crossem {
namespace {

using ops::Add;
using ops::Concat;
using ops::Div;
using ops::IndexSelect;
using ops::MatMul;
using ops::Mean;
using ops::Mul;
using ops::Reshape;
using ops::Slice;
using ops::Softmax;
using ops::Sub;
using ops::Sum;
using ops::Transpose;
using testing::ExpectGradMatchesNumeric;

TEST(BroadcastTest, Shapes) {
  EXPECT_EQ(ops::BroadcastShapes({2, 3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(ops::BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(ops::BroadcastShapes({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(ops::BroadcastShapes({}, {5}), (Shape{5}));
}

TEST(ElementwiseTest, AddSubMulDiv) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {4, 3, 2, 1});
  EXPECT_EQ(Add(a, b).ToVector(), (std::vector<float>{5, 5, 5, 5}));
  EXPECT_EQ(Sub(a, b).ToVector(), (std::vector<float>{-3, -1, 1, 3}));
  EXPECT_EQ(Mul(a, b).ToVector(), (std::vector<float>{4, 6, 6, 4}));
  EXPECT_EQ(Div(a, b).ToVector(), (std::vector<float>{0.25f, 2.f / 3.f, 1.5f, 4}));
}

TEST(ElementwiseTest, RowBroadcastAdd) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  EXPECT_EQ(Add(a, bias).ToVector(),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(ElementwiseTest, ScalarBroadcast) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor s = Tensor::Scalar(10.0f);
  EXPECT_EQ(Mul(a, s).ToVector(), (std::vector<float>{10, 20}));
}

TEST(ElementwiseGradTest, BroadcastBackwardReduces) {
  // Bias broadcast across rows: grad of bias is summed over rows.
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {1, 1, 1});
  bias.set_requires_grad(true);
  Sum(Add(a, bias)).Backward();
  EXPECT_EQ(bias.grad().ToVector(), (std::vector<float>{2, 2, 2}));
}

TEST(ElementwiseGradTest, MulNumeric) {
  Rng rng(1);
  Tensor b = Tensor::Randn({2, 3}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(Mul(x, b)); },
      Tensor::Randn({2, 3}, &rng));
}

TEST(ElementwiseGradTest, DivNumeric) {
  Rng rng(2);
  Tensor b = ops::AddScalar(ops::Abs(Tensor::Randn({6}, &rng)), 0.5f);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(Div(x, b)); },
      Tensor::Randn({6}, &rng));
}

TEST(UnaryTest, Values) {
  Tensor x = Tensor::FromVector({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_EQ(ops::Relu(x).ToVector(), (std::vector<float>{0, 0, 2}));
  EXPECT_EQ(ops::Neg(x).ToVector(), (std::vector<float>{1, 0, -2}));
  EXPECT_EQ(ops::Abs(x).ToVector(), (std::vector<float>{1, 0, 2}));
  Tensor e = ops::Exp(Tensor::FromVector({1}, {1.0f}));
  EXPECT_NEAR(e.at(0), std::exp(1.0f), 1e-5f);
  Tensor l = ops::Log(Tensor::FromVector({1}, {std::exp(2.0f)}));
  EXPECT_NEAR(l.at(0), 2.0f, 1e-5f);
}

struct UnaryCase {
  const char* name;
  Tensor (*fn)(const Tensor&);
  bool positive_only;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesNumeric) {
  const UnaryCase& c = GetParam();
  Rng rng(11);
  Tensor x = c.positive_only
                 ? ops::AddScalar(ops::Abs(Tensor::Randn({8}, &rng)), 0.5f)
                 : ops::AddScalar(Tensor::Randn({8}, &rng), 0.05f);
  ExpectGradMatchesNumeric(
      [&](const Tensor& t) { return Sum(c.fn(t)); }, x.Clone());
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(UnaryCase{"exp", &ops::Exp, false},
                      UnaryCase{"log", &ops::Log, true},
                      UnaryCase{"sqrt", &ops::Sqrt, true},
                      UnaryCase{"tanh", &ops::Tanh, false},
                      UnaryCase{"sigmoid", &ops::Sigmoid, false},
                      UnaryCase{"gelu", &ops::Gelu, false},
                      UnaryCase{"sin", &ops::Sin, false},
                      UnaryCase{"cos", &ops::Cos, false},
                      UnaryCase{"neg", &ops::Neg, false}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

TEST(UnaryTest, SinCosIdentity) {
  Rng rng(30);
  Tensor x = Tensor::Randn({12}, &rng, 2.0f);
  Tensor s = ops::Sin(x);
  Tensor c = ops::Cos(x);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(s.at(i) * s.at(i) + c.at(i) * c.at(i), 1.0f, 1e-5f);
  }
}

TEST(PropertyTest, ReshapeTransposeRoundTrip) {
  Rng rng(31);
  Tensor x = Tensor::Randn({3, 4, 5}, &rng);
  Tensor y = Transpose(Transpose(x, 0, 2), 0, 2);
  EXPECT_EQ(y.ToVector(), x.ToVector());
  Tensor z = Reshape(Reshape(x, {60}), {3, 4, 5});
  EXPECT_EQ(z.ToVector(), x.ToVector());
}

TEST(PropertyTest, SoftmaxInvariantToShift) {
  Rng rng(32);
  Tensor x = Tensor::Randn({4, 6}, &rng);
  Tensor a = Softmax(x);
  Tensor b = Softmax(ops::AddScalar(x, 100.0f));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), 1e-5f);
  }
}

TEST(PropertyTest, ConcatSliceInverse) {
  Rng rng(33);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor b = Tensor::Randn({2, 5}, &rng);
  Tensor cat = Concat({a, b}, 1);
  EXPECT_EQ(Slice(cat, 1, 0, 3).ToVector(), a.ToVector());
  EXPECT_EQ(Slice(cat, 1, 3, 8).ToVector(), b.ToVector());
}

TEST(PropertyTest, MeanIsSumOverCount) {
  Rng rng(34);
  Tensor x = Tensor::Randn({5, 7}, &rng);
  EXPECT_NEAR(Mean(x).item(), Sum(x).item() / 35.0f, 1e-5f);
}

TEST(MatMulTest, TwoByTwo) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  EXPECT_EQ(MatMul(a, b).ToVector(), (std::vector<float>{19, 22, 43, 50}));
}

TEST(MatMulTest, RectangularShapes) {
  Tensor a = Tensor::Ones({3, 4});
  Tensor b = Tensor::Ones({4, 5});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 5}));
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c.at(i), 4.0f);
}

TEST(MatMulTest, BatchedMatchesPerSlice) {
  Rng rng(5);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor b = Tensor::Randn({2, 4, 5}, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 5}));
  for (int64_t s = 0; s < 2; ++s) {
    Tensor as = Reshape(Slice(a, 0, s, s + 1), {3, 4});
    Tensor bs = Reshape(Slice(b, 0, s, s + 1), {4, 5});
    Tensor cs = MatMul(as, bs);
    for (int64_t i = 0; i < 15; ++i) {
      EXPECT_NEAR(c.at(s * 15 + i), cs.at(i), 1e-5f);
    }
  }
}

TEST(MatMulTest, BatchedWithShared2DRhs) {
  Rng rng(6);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor b = Tensor::Randn({4, 5}, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 5}));
  Tensor a0 = Reshape(Slice(a, 0, 0, 1), {3, 4});
  Tensor c0 = MatMul(a0, b);
  for (int64_t i = 0; i < 15; ++i) EXPECT_NEAR(c.at(i), c0.at(i), 1e-5f);
}

TEST(MatMulGradTest, LhsNumeric) {
  Rng rng(7);
  Tensor b = Tensor::Randn({3, 2}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(MatMul(x, b)); },
      Tensor::Randn({2, 3}, &rng));
}

TEST(MatMulGradTest, RhsNumeric) {
  Rng rng(8);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(MatMul(a, x)); },
      Tensor::Randn({3, 4}, &rng));
}

TEST(MatMulGradTest, Shared2DRhsAccumulatesOverBatch) {
  Rng rng(9);
  Tensor a = Tensor::Randn({2, 2, 3}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(MatMul(a, x)); },
      Tensor::Randn({3, 2}, &rng));
}

TEST(TransposeTest, TwoDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(TransposeTest, InnerDimsOf4D) {
  Rng rng(10);
  Tensor a = Tensor::Randn({2, 3, 4, 5}, &rng);
  Tensor t = Transpose(a, 1, 2);
  EXPECT_EQ(t.shape(), (Shape{2, 4, 3, 5}));
  // Element check: t[b][j][i][k] == a[b][i][j][k].
  auto av = a.ToVector();
  auto tv = t.ToVector();
  auto a_at = [&](int64_t b, int64_t i, int64_t j, int64_t k) {
    return av[static_cast<size_t>(((b * 3 + i) * 4 + j) * 5 + k)];
  };
  auto t_at = [&](int64_t b, int64_t j, int64_t i, int64_t k) {
    return tv[static_cast<size_t>(((b * 4 + j) * 3 + i) * 5 + k)];
  };
  for (int64_t b = 0; b < 2; ++b)
    for (int64_t i = 0; i < 3; ++i)
      for (int64_t j = 0; j < 4; ++j)
        for (int64_t k = 0; k < 5; ++k)
          EXPECT_EQ(t_at(b, j, i, k), a_at(b, i, j, k));
}

TEST(TransposeGradTest, Numeric) {
  Rng rng(12);
  Tensor w = Tensor::Randn({3, 2}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(Mul(Transpose(x, 0, 1), w)); },
      Tensor::Randn({2, 3}, &rng));
}

TEST(ReshapeTest, InferredDim) {
  Tensor a = Tensor::Ones({2, 6});
  EXPECT_EQ(Reshape(a, {3, -1}).shape(), (Shape{3, 4}));
  EXPECT_EQ(Reshape(a, {-1}).shape(), (Shape{12}));
}

TEST(ReductionTest, SumAndMean) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 3.5f);
  Tensor s0 = Sum(a, 0, false);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0.ToVector(), (std::vector<float>{5, 7, 9}));
  Tensor s1 = Sum(a, 1, true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1.ToVector(), (std::vector<float>{6, 15}));
  Tensor m1 = Mean(a, -1, false);
  EXPECT_EQ(m1.ToVector(), (std::vector<float>{2, 5}));
}

TEST(ReductionGradTest, SumDimNumeric) {
  Rng rng(13);
  ExpectGradMatchesNumeric(
      [](const Tensor& x) {
        return Sum(Mul(Sum(x, 1, true), Sum(x, 1, true)));
      },
      Tensor::Randn({3, 4}, &rng));
}

TEST(ArgMaxTest, LastDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  auto idx = ops::ArgMax(a, -1);
  EXPECT_EQ(idx, (std::vector<int64_t>{1, 0}));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(14);
  Tensor x = Tensor::Randn({4, 7}, &rng, 3.0f);
  Tensor y = Softmax(x);
  for (int64_t r = 0; r < 4; ++r) {
    float s = 0;
    for (int64_t c = 0; c < 7; ++c) s += y.at(r * 7 + c);
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, NumericallyStableWithLargeLogits) {
  Tensor x = Tensor::FromVector({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor y = Softmax(x);
  EXPECT_FALSE(std::isnan(y.at(0)));
  EXPECT_GT(y.at(2), y.at(1));
  EXPECT_GT(y.at(1), y.at(0));
}

TEST(SoftmaxGradTest, Numeric) {
  Rng rng(15);
  Tensor w = Tensor::Randn({2, 5}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(Mul(Softmax(x), w)); },
      Tensor::Randn({2, 5}, &rng));
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Rng rng(16);
  Tensor x = Tensor::Randn({3, 4}, &rng);
  Tensor a = ops::LogSoftmax(x);
  Tensor b = ops::Log(Softmax(x));
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(a.at(i), b.at(i), 1e-5f);
}

TEST(LogSoftmaxGradTest, Numeric) {
  Rng rng(17);
  Tensor w = Tensor::Randn({2, 5}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(Mul(ops::LogSoftmax(x), w)); },
      Tensor::Randn({2, 5}, &rng));
}

TEST(L2NormalizeTest, UnitNorms) {
  Rng rng(18);
  Tensor x = Tensor::Randn({5, 8}, &rng);
  Tensor y = ops::L2Normalize(x);
  for (int64_t r = 0; r < 5; ++r) {
    float s = 0;
    for (int64_t c = 0; c < 8; ++c) s += y.at(r * 8 + c) * y.at(r * 8 + c);
    EXPECT_NEAR(s, 1.0f, 1e-4f);
  }
}

TEST(L2NormalizeGradTest, Numeric) {
  Rng rng(19);
  Tensor w = Tensor::Randn({2, 6}, &rng);
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) { return Sum(Mul(ops::L2Normalize(x), w)); },
      ops::AddScalar(Tensor::Randn({2, 6}, &rng), 1.0f));
}

TEST(ConcatTest, AlongEachDim) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{4, 2}));
  EXPECT_EQ(c0.ToVector(), (std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8}));
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{2, 4}));
  EXPECT_EQ(c1.ToVector(), (std::vector<float>{1, 2, 5, 6, 3, 4, 7, 8}));
}

TEST(ConcatGradTest, SplitsGradient) {
  Tensor a = Tensor::Ones({2, 2});
  Tensor b = Tensor::Ones({2, 2});
  a.set_requires_grad(true);
  b.set_requires_grad(true);
  Tensor w = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Sum(Mul(Concat({a, b}, 1), w)).Backward();
  EXPECT_EQ(a.grad().ToVector(), (std::vector<float>{1, 2, 5, 6}));
  EXPECT_EQ(b.grad().ToVector(), (std::vector<float>{3, 4, 7, 8}));
}

TEST(StackTest, AddsLeadingDim) {
  Tensor a = Tensor::Ones({3});
  Tensor b = Tensor::Zeros({3});
  Tensor s = ops::Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{1, 1, 1, 0, 0, 0}));
}

TEST(SliceTest, MiddleDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = Slice(a, 1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{2, 3, 5, 6}));
}

TEST(SliceGradTest, ScattersIntoRange) {
  Tensor a = Tensor::Zeros({2, 3});
  a.set_requires_grad(true);
  Sum(Slice(a, 1, 0, 2)).Backward();
  EXPECT_EQ(a.grad().ToVector(), (std::vector<float>{1, 1, 0, 1, 1, 0}));
}

TEST(IndexSelectTest, GathersRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = IndexSelect(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_EQ(g.ToVector(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
}

TEST(IndexSelectGradTest, ScatterAddsDuplicates) {
  Tensor a = Tensor::Zeros({3, 2});
  a.set_requires_grad(true);
  Sum(IndexSelect(a, {2, 0, 2})).Backward();
  // Row 2 selected twice -> grad 2; row 0 once; row 1 never.
  EXPECT_EQ(a.grad().ToVector(), (std::vector<float>{1, 1, 0, 0, 2, 2}));
}

TEST(NllLossTest, ValueAndGrad) {
  Tensor logits = Tensor::FromVector({2, 3}, {2, 1, 0, 0, 1, 2});
  logits.set_requires_grad(true);
  Tensor lp = ops::LogSoftmax(logits);
  Tensor loss = ops::NllLoss(lp, {0, 2});
  // Both rows have the target at the max logit; loss is the same per row.
  float expected = -std::log(std::exp(2.0f) /
                             (std::exp(2.0f) + std::exp(1.0f) + 1.0f));
  EXPECT_NEAR(loss.item(), expected, 1e-5f);
  loss.Backward();
  ASSERT_TRUE(logits.grad().defined());
}

TEST(NllLossGradTest, Numeric) {
  Rng rng(20);
  std::vector<int64_t> targets = {1, 0, 2};
  ExpectGradMatchesNumeric(
      [&](const Tensor& x) {
        return ops::NllLoss(ops::LogSoftmax(x), targets);
      },
      Tensor::Randn({3, 4}, &rng));
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(21);
  Tensor x = Tensor::Randn({10}, &rng);
  Tensor y = ops::Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_EQ(y.ToVector(), x.ToVector());
}

TEST(DropoutTest, TrainModePreservesExpectation) {
  Rng rng(22);
  Tensor x = Tensor::Ones({10000});
  Tensor y = ops::Dropout(x, 0.3f, /*training=*/true, &rng);
  double mean = 0;
  for (int64_t i = 0; i < y.numel(); ++i) mean += y.at(i);
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(EyeTest, Identity) {
  Tensor e = ops::Eye(3);
  EXPECT_EQ(e.ToVector(),
            (std::vector<float>{1, 0, 0, 0, 1, 0, 0, 0, 1}));
}

}  // namespace
}  // namespace crossem
