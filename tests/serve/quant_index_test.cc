// Quantized serving-index contracts (DESIGN.md §17): CEMCKPT2
// round-trips restore blocks and scales bitwise, a corrupted scale
// record is rejected wholesale, the "<index>.f32rank" side file is
// optional-but-validated, exact re-rank holds recall, and sharded
// partition gathers quantized rows bit-identically.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/index.h"
#include "serve/sharded.h"
#include "tensor/tensor.h"
#include "util/fault_injection.h"
#include "util/random.h"

namespace crossem {
namespace serve {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::string> MakeIds(int64_t n) {
  std::vector<std::string> ids;
  ids.reserve(n);
  for (int64_t i = 0; i < n; ++i) ids.push_back("img" + std::to_string(i));
  return ids;
}

Tensor ClusteredVectors(int64_t n, int64_t dim, uint64_t seed,
                        int64_t clusters = 16) {
  Rng rng(seed);
  Tensor centers = Tensor::Randn({clusters, dim}, &rng, 1.0f);
  Tensor out = Tensor::Randn({n, dim}, &rng, 0.25f);
  float* o = out.data();
  const float* c = centers.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cl = rng.UniformInt(0, clusters - 1);
    for (int64_t d = 0; d < dim; ++d) o[i * dim + d] += c[cl * dim + d];
  }
  return out;
}

std::unique_ptr<EmbeddingIndex> MakeIndex(const std::string& backend,
                                          quant::QuantFormat format) {
  if (backend == "flat") return std::make_unique<FlatIndex>(format);
  HnswOptions ho;
  ho.ef_search = 96;
  return std::make_unique<HnswIndex>(ho, format);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(QuantIndexTest, SaveLoadRestoresBlocksAndScalesBitwise) {
  const int64_t n = 220, dim = 12;
  Tensor corpus = ClusteredVectors(n, dim, 91);
  Tensor queries = ClusteredVectors(8, dim, 92);

  for (const char* backend : {"flat", "hnsw"}) {
    for (const quant::QuantFormat format :
         {quant::QuantFormat::kF16, quant::QuantFormat::kInt8}) {
      auto index = MakeIndex(backend, format);
      ASSERT_TRUE(index->Add(corpus, MakeIds(n)).ok());
      EXPECT_EQ(index->quant_format(), format);
      index->set_rerank_k(48);
      const std::string path = TempPath("quant_roundtrip.cidx");
      ASSERT_TRUE(index->Save(path).ok());
      ASSERT_TRUE(io::FileExists(quant::ExactSidePath(path)));

      auto loaded = EmbeddingIndex::Load(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      const EmbeddingIndex& re = *loaded.value();
      EXPECT_EQ(re.quant_format(), format);
      EXPECT_EQ(re.rerank_k(), 48);
      EXPECT_EQ(re.ids(), index->ids());
      ASSERT_NE(re.exact_store(), nullptr);
      EXPECT_EQ(re.exact_store()->size(), n);

      // The quantized payload survives bitwise — blocks and scales.
      EXPECT_EQ(re.quant_store().f16_rows(), index->quant_store().f16_rows());
      EXPECT_EQ(re.quant_store().int8_rows(),
                index->quant_store().int8_rows());
      EXPECT_EQ(re.quant_store().scales(), index->quant_store().scales());

      // And the exact side rows match the in-memory exact store.
      std::vector<float> a(dim), b(dim);
      for (int64_t i : {int64_t{0}, n / 2, n - 1}) {
        ASSERT_TRUE(index->exact_store()->Row(i, a.data()));
        ASSERT_TRUE(re.exact_store()->Row(i, b.data()));
        EXPECT_EQ(a, b) << backend << " row " << i;
      }

      for (int64_t qi = 0; qi < 8; ++qi) {
        const float* q = queries.data() + qi * dim;
        auto x = index->Search(q, 10);
        auto y = re.Search(q, 10);
        ASSERT_EQ(x.size(), y.size()) << backend;
        for (size_t j = 0; j < x.size(); ++j) {
          EXPECT_EQ(x[j].id, y[j].id) << backend;
          EXPECT_EQ(x[j].score, y[j].score) << backend;
        }
      }
      std::remove(path.c_str());
      std::remove(quant::ExactSidePath(path).c_str());
    }
  }
}

TEST(QuantIndexTest, CorruptScaleRecordRejected) {
  const int64_t n = 96, dim = 10;
  Tensor corpus = ClusteredVectors(n, dim, 101);
  FlatIndex index(quant::QuantFormat::kInt8);
  ASSERT_TRUE(index.Add(corpus, MakeIds(n)).ok());
  const std::string path = TempPath("corrupt_scales.cidx");
  ASSERT_TRUE(index.Save(path).ok());

  std::string bytes = ReadAll(path);
  const size_t name = bytes.find("quant/scales");
  ASSERT_NE(name, std::string::npos);
  // Flip a byte inside the scale payload (past the name + kind + shape
  // header): the record CRC must reject the file wholesale.
  const size_t pos = name + std::string("quant/scales").size() + 40;
  ASSERT_LT(pos, bytes.size());
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5a);
  WriteAll(path, bytes);
  auto loaded = EmbeddingIndex::Load(path);
  EXPECT_FALSE(loaded.ok());

  std::remove(path.c_str());
  std::remove(quant::ExactSidePath(path).c_str());
}

TEST(QuantIndexTest, MissingSideFileDisablesReRankButLoads) {
  const int64_t n = 150, dim = 8;
  Tensor corpus = ClusteredVectors(n, dim, 111);
  FlatIndex index(quant::QuantFormat::kF16);
  ASSERT_TRUE(index.Add(corpus, MakeIds(n)).ok());
  const std::string path = TempPath("no_side.cidx");
  ASSERT_TRUE(index.Save(path).ok());
  std::remove(quant::ExactSidePath(path).c_str());

  auto loaded = EmbeddingIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->exact_store(), nullptr);
  // Degraded but functional: searches answer from quantized scores.
  Tensor queries = ClusteredVectors(4, dim, 112);
  for (int64_t qi = 0; qi < 4; ++qi) {
    auto got = loaded.value()->Search(queries.data() + qi * dim, 5);
    EXPECT_EQ(got.size(), 5u);
    for (const auto& m : got) EXPECT_LE(std::abs(m.score), 1.0001f);
  }
  std::remove(path.c_str());
}

TEST(QuantIndexTest, InvalidSideFileRejected) {
  const int64_t n = 80, dim = 8;
  Tensor corpus = ClusteredVectors(n, dim, 121);
  FlatIndex index(quant::QuantFormat::kInt8);
  ASSERT_TRUE(index.Add(corpus, MakeIds(n)).ok());
  const std::string path = TempPath("bad_side.cidx");
  ASSERT_TRUE(index.Save(path).ok());
  const std::string side = quant::ExactSidePath(path);

  // Header byte flip (magic) and truncation must both fail the load.
  std::string bytes = ReadAll(side);
  ASSERT_GT(bytes.size(), 64u);
  std::string bad = bytes;
  bad[3] ^= 0x40;
  WriteAll(side, bad);
  EXPECT_FALSE(EmbeddingIndex::Load(path).ok());

  WriteAll(side, bytes.substr(0, bytes.size() - 7));
  EXPECT_FALSE(EmbeddingIndex::Load(path).ok());

  std::remove(path.c_str());
  std::remove(side.c_str());
}

TEST(QuantIndexTest, ReRankRestoresExactOrderOnSmallWorlds) {
  // With rerank_k >= n the pipeline must return the exact f32 order:
  // the quantized scan only selects candidates, the f32 re-rank ranks.
  const int64_t n = 300, dim = 16;
  Tensor corpus = ClusteredVectors(n, dim, 131);
  Tensor queries = ClusteredVectors(20, dim, 132);

  FlatIndex exact;
  ASSERT_TRUE(exact.Add(corpus, MakeIds(n)).ok());
  for (const quant::QuantFormat format :
       {quant::QuantFormat::kF16, quant::QuantFormat::kInt8}) {
    FlatIndex quantized(format);
    ASSERT_TRUE(quantized.Add(corpus, MakeIds(n)).ok());
    quantized.set_rerank_k(n);
    for (int64_t qi = 0; qi < 20; ++qi) {
      const float* q = queries.data() + qi * dim;
      auto want = exact.Search(q, 10);
      auto got = quantized.Search(q, 10);
      ASSERT_EQ(got.size(), want.size());
      for (size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(got[j].id, want[j].id)
            << quant::FormatName(format) << " query " << qi << " rank " << j;
        EXPECT_EQ(got[j].score, want[j].score);
      }
    }
  }
}

TEST(QuantIndexTest, RecallAtTenWithDefaultReRankDepth) {
  const int64_t n = 2000, dim = 16, num_queries = 100, k = 10;
  Tensor corpus = ClusteredVectors(n, dim, 141);
  Tensor queries = ClusteredVectors(num_queries, dim, 142);

  FlatIndex exact;
  ASSERT_TRUE(exact.Add(corpus, MakeIds(n)).ok());
  for (const quant::QuantFormat format :
       {quant::QuantFormat::kF16, quant::QuantFormat::kInt8}) {
    FlatIndex quantized(format);
    ASSERT_TRUE(quantized.Add(corpus, MakeIds(n)).ok());
    int64_t found = 0;
    for (int64_t qi = 0; qi < num_queries; ++qi) {
      const float* q = queries.data() + qi * dim;
      auto want = exact.Search(q, k);
      auto got = quantized.Search(q, k);
      for (const auto& w : want) {
        for (const auto& g : got) {
          if (g.id == w.id) {
            ++found;
            break;
          }
        }
      }
    }
    const double recall =
        static_cast<double>(found) / static_cast<double>(num_queries * k);
    EXPECT_GE(recall, 0.99)
        << quant::FormatName(format) << " recall@10 = " << recall;
  }
}

TEST(QuantIndexTest, VectorBytesShrinkWithTheFormat) {
  const int64_t n = 128, dim = 32;
  Tensor corpus = ClusteredVectors(n, dim, 151);
  FlatIndex f32;
  FlatIndex f16(quant::QuantFormat::kF16);
  FlatIndex int8(quant::QuantFormat::kInt8);
  ASSERT_TRUE(f32.Add(corpus, MakeIds(n)).ok());
  ASSERT_TRUE(f16.Add(corpus, MakeIds(n)).ok());
  ASSERT_TRUE(int8.Add(corpus, MakeIds(n)).ok());
  // The acceptance ceilings, exact at dim 32: 0.5x and 0.28125x.
  EXPECT_EQ(f32.VectorBytes(), n * dim * 4);
  EXPECT_LE(f16.VectorBytes() * 100, f32.VectorBytes() * 55);
  EXPECT_LE(int8.VectorBytes() * 100, f32.VectorBytes() * 30);
  EXPECT_GT(f32.MemoryBytes(), f32.VectorBytes());  // ids count too
}

TEST(QuantShardedTest, PartitionGathersQuantizedRowsBitwise) {
  const int64_t n = 400, dim = 12;
  Tensor corpus = ClusteredVectors(n, dim, 161);
  Tensor queries = ClusteredVectors(10, dim, 162);

  for (const quant::QuantFormat format :
       {quant::QuantFormat::kF16, quant::QuantFormat::kInt8}) {
    FlatIndex source(format);
    ASSERT_TRUE(source.Add(corpus, MakeIds(n)).ok());
    ShardedIndexOptions so;
    so.num_shards = 4;
    auto sharded = ShardedIndex::Partition(source, so);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    int64_t total = 0;
    for (int64_t s = 0; s < sharded.value()->num_shards(); ++s) {
      const EmbeddingIndex& shard = sharded.value()->shard(s);
      EXPECT_EQ(shard.quant_format(), format);
      total += shard.size();
      // Every shard row's quantized bytes must equal the source's for
      // the same external id (bitwise gather, no re-quantization).
      std::vector<float> a(dim), b(dim);
      for (int64_t r = 0; r < shard.size(); ++r) {
        const auto& id = shard.ids()[r];
        const auto it =
            std::find(source.ids().begin(), source.ids().end(), id);
        ASSERT_NE(it, source.ids().end());
        const int64_t src_row = it - source.ids().begin();
        shard.quant_store().DequantizeRow(r, a.data());
        source.quant_store().DequantizeRow(src_row, b.data());
        EXPECT_EQ(a, b) << "shard " << s << " row " << r;
      }
    }
    EXPECT_EQ(total, n);

    // Scatter-gather over quantized shards merges to the single-index
    // answer (both re-rank from the same shared exact store).
    for (int64_t qi = 0; qi < 10; ++qi) {
      const float* q = queries.data() + qi * dim;
      auto want = source.Search(q, 10);
      std::vector<std::vector<eval::ScoredId>> parts;
      for (int64_t s = 0; s < sharded.value()->num_shards(); ++s) {
        parts.push_back(
            sharded.value()->SearchShard(s, q, 10, kNoSearchDeadline));
      }
      auto got = eval::MergeTopK(parts, 10);
      ASSERT_EQ(got.size(), want.size());
      for (size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(got[j].id, want[j].id)
            << quant::FormatName(format) << " query " << qi;
      }
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace crossem
