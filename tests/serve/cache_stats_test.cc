// The serving cache (LRU + fingerprint keying) and the observability
// layer (log2 histograms, stats snapshots).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/cache.h"
#include "serve/stats.h"

namespace crossem {
namespace serve {
namespace {

std::vector<float> Emb(float v) { return {v, v + 1}; }

TEST(EmbeddingCacheTest, LruEvictionOrder) {
  EmbeddingCache cache(2);
  cache.Insert(1, 7, Emb(1));
  cache.Insert(2, 7, Emb(2));
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup(1, 7, &out));  // 1 now most-recent
  cache.Insert(3, 7, Emb(3));             // evicts 2
  EXPECT_TRUE(cache.Lookup(1, 7, &out));
  EXPECT_FALSE(cache.Lookup(2, 7, &out));
  EXPECT_TRUE(cache.Lookup(3, 7, &out));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(out, Emb(3));
}

TEST(EmbeddingCacheTest, FingerprintIsPartOfTheKey) {
  EmbeddingCache cache(8);
  cache.Insert(5, /*fingerprint=*/100, Emb(1));
  std::vector<float> out;
  // Same vertex under a retuned model's fingerprint: structural miss.
  EXPECT_FALSE(cache.Lookup(5, 200, &out));
  EXPECT_TRUE(cache.Lookup(5, 100, &out));
  EXPECT_EQ(out, Emb(1));
}

TEST(EmbeddingCacheTest, ReinsertRefreshesValueAndRecency) {
  EmbeddingCache cache(2);
  cache.Insert(1, 7, Emb(1));
  cache.Insert(2, 7, Emb(2));
  cache.Insert(1, 7, Emb(9));  // refresh, now most-recent
  cache.Insert(3, 7, Emb(3));  // evicts 2
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup(1, 7, &out));
  EXPECT_EQ(out, Emb(9));
  EXPECT_FALSE(cache.Lookup(2, 7, &out));
}

TEST(EmbeddingCacheTest, ZeroCapacityDisables) {
  EmbeddingCache cache(0);
  cache.Insert(1, 7, Emb(1));
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup(1, 7, &out));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(EmbeddingCacheTest, FingerprintChangeEvictsOldEntriesViaLru) {
  // A retune does not need an invalidation broadcast: old-fingerprint
  // entries stop being hit, so ordinary LRU churn under the new
  // fingerprint washes them out of a bounded cache.
  EmbeddingCache cache(4);
  for (graph::VertexId v = 0; v < 4; ++v) cache.Insert(v, 100, Emb(v));
  EXPECT_EQ(cache.size(), 4);
  // Model retuned: same vertices, new fingerprint.
  for (graph::VertexId v = 0; v < 4; ++v) cache.Insert(v, 200, Emb(v + 10));
  EXPECT_EQ(cache.size(), 4);  // capacity held, old generation evicted
  std::vector<float> out;
  for (graph::VertexId v = 0; v < 4; ++v) {
    EXPECT_FALSE(cache.Lookup(v, 100, &out)) << "stale hit v" << v;
    ASSERT_TRUE(cache.Lookup(v, 200, &out));
    EXPECT_EQ(out, Emb(v + 10));
  }
}

TEST(EmbeddingCacheTest, LruHoldsUnderConcurrentChurn) {
  // Many threads hammer one small cache with overlapping keys across
  // two fingerprints. Invariants that must hold regardless of
  // interleaving: size never exceeds capacity, every hit returns the
  // exact value inserted for that (vertex, fingerprint), and the
  // hit/miss tallies equal the number of lookups.
  constexpr int64_t kCapacity = 16;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  EmbeddingCache cache(kCapacity);
  std::atomic<int64_t> bad_values{0};
  std::atomic<int64_t> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &bad_values, &lookups, t] {
      std::vector<float> out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Deterministic per-thread walk over 24 keys x 2 fingerprints.
        const graph::VertexId v = (t * 7 + i) % 24;
        const uint32_t fp = ((t + i) % 2 == 0) ? 100u : 200u;
        if (i % 3 == 0) {
          cache.Insert(v, fp, Emb(static_cast<float>(v * 1000 + fp)));
        } else {
          lookups.fetch_add(1, std::memory_order_relaxed);
          if (cache.Lookup(v, fp, &out) &&
              out != Emb(static_cast<float>(v * 1000 + fp))) {
            bad_values.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad_values.load(), 0);
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_GT(cache.size(), 0);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
  EXPECT_GT(cache.hits(), 0);   // overlapping keys guarantee reuse
  EXPECT_GT(cache.misses(), 0); // capacity << working set guarantees churn
}

TEST(EmbeddingCacheBytesTest, ApproxBytesTracksInsertRefreshEvictClear) {
  EmbeddingCache cache(2);
  EXPECT_EQ(cache.ApproxBytes(), 0);
  cache.Insert(1, 7, Emb(1));
  const int64_t one = cache.ApproxBytes();
  EXPECT_GT(one, 0);
  cache.Insert(2, 7, Emb(2));
  EXPECT_EQ(cache.ApproxBytes(), 2 * one);
  cache.Insert(1, 7, Emb(9));  // refresh: same payload size, no growth
  EXPECT_EQ(cache.ApproxBytes(), 2 * one);
  cache.Insert(3, 7, Emb(3));  // evicts one entry
  EXPECT_EQ(cache.ApproxBytes(), 2 * one);
  cache.Clear();
  EXPECT_EQ(cache.ApproxBytes(), 0);
}

TEST(EmbeddingCacheBytesTest, ByteCapEvictsBeforeTheEntryCap) {
  // Entry cap 100 never binds; the byte cap must do the evicting.
  EmbeddingCache probe(EmbeddingCacheOptions{100, 0,
                                             quant::QuantFormat::kF32});
  probe.Insert(0, 7, Emb(0));
  const int64_t per_entry = probe.ApproxBytes();
  ASSERT_GT(per_entry, 0);

  EmbeddingCache cache(EmbeddingCacheOptions{100, 3 * per_entry,
                                             quant::QuantFormat::kF32});
  for (graph::VertexId v = 0; v < 10; ++v) cache.Insert(v, 7, Emb(v));
  EXPECT_LE(cache.ApproxBytes(), 3 * per_entry);
  EXPECT_EQ(cache.size(), 3);
  // LRU order: the three most recent survive.
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup(6, 7, &out));
  EXPECT_TRUE(cache.Lookup(7, 7, &out));
  EXPECT_TRUE(cache.Lookup(8, 7, &out));
  EXPECT_TRUE(cache.Lookup(9, 7, &out));
}

TEST(EmbeddingCacheBytesTest, OneOversizedEntryIsKeptNotThrashed) {
  EmbeddingCache cache(EmbeddingCacheOptions{100, /*max_bytes=*/1,
                                             quant::QuantFormat::kF32});
  cache.Insert(1, 7, Emb(1));  // bigger than the whole byte budget
  EXPECT_EQ(cache.size(), 1);
  std::vector<float> out;
  EXPECT_TRUE(cache.Lookup(1, 7, &out));
  EXPECT_EQ(out, Emb(1));
}

TEST(EmbeddingCacheBytesTest, QuantizedEntriesRoundTripWithinTolerance) {
  std::vector<float> emb;
  for (int i = 0; i < 64; ++i) {
    emb.push_back(0.1f * static_cast<float>(i) - 3.0f);
  }
  for (const quant::QuantFormat format :
       {quant::QuantFormat::kF32, quant::QuantFormat::kF16,
        quant::QuantFormat::kInt8}) {
    EmbeddingCache cache(EmbeddingCacheOptions{8, 0, format});
    EXPECT_EQ(cache.options().format, format);
    cache.Insert(1, 7, emb);
    std::vector<float> out;
    ASSERT_TRUE(cache.Lookup(1, 7, &out));
    ASSERT_EQ(out.size(), emb.size());
    for (size_t d = 0; d < emb.size(); ++d) {
      const float tol = format == quant::QuantFormat::kF32
                            ? 0.0f
                            : (format == quant::QuantFormat::kF16
                                   ? 4e-3f    // |x| <= 3.3, half ulp ~2e-3
                                   : 3e-2f);  // block max / 254
      EXPECT_NEAR(out[d], emb[d], tol)
          << quant::FormatName(format) << " dim " << d;
    }
  }
  // Quantized caches hold the same entry in fewer bytes.
  EmbeddingCache f32(EmbeddingCacheOptions{8, 0, quant::QuantFormat::kF32});
  EmbeddingCache int8(EmbeddingCacheOptions{8, 0, quant::QuantFormat::kInt8});
  f32.Insert(1, 7, emb);
  int8.Insert(1, 7, emb);
  EXPECT_LT(int8.ApproxBytes(), f32.ApproxBytes());
}

TEST(HistogramTest, PercentilesBoundTheData) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.max(), 1000);
  // Log2 buckets: percentile readouts are bucket upper bounds, so p50
  // lands within a factor of two above the true median...
  EXPECT_GE(h.Percentile(0.5), 500);
  EXPECT_LE(h.Percentile(0.5), 1023);
  // ...and p99/p100 are capped by the observed max.
  EXPECT_GE(h.Percentile(0.99), 990);
  EXPECT_LE(h.Percentile(0.99), 1000);
  EXPECT_EQ(h.Percentile(1.0), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
}

TEST(HistogramTest, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  h.Record(42);
  EXPECT_EQ(h.Percentile(0.01), 42);
  EXPECT_EQ(h.Percentile(0.99), 42);
}

TEST(StatsCollectorTest, SnapshotAggregates) {
  StatsCollector c;
  c.RecordReceived();
  c.RecordReceived();
  c.RecordReceived();
  c.RecordRejectedQueueFull();
  c.RecordRejectedShutdown();
  c.RecordExpired();
  c.RecordBatch(/*batch_size=*/2, /*cache_hits=*/1, /*cache_misses=*/1);
  c.RecordCompleted(/*latency_us=*/1500);
  c.RecordCompleted(/*latency_us=*/300);

  ServiceStats s = c.Snapshot();
  EXPECT_EQ(s.received, 3);
  EXPECT_EQ(s.rejected_queue_full, 1);
  EXPECT_EQ(s.rejected_shutdown, 1);
  EXPECT_EQ(s.expired_deadline, 1);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.batches, 1);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_DOUBLE_EQ(s.CacheHitRate(), 0.5);
  EXPECT_GE(s.latency_p99_us, 1500);
  EXPECT_EQ(s.latency_max_us, 1500);
  EXPECT_FALSE(s.ToString().empty());
}

}  // namespace
}  // namespace serve
}  // namespace crossem
