// The serving cache (LRU + fingerprint keying) and the observability
// layer (log2 histograms, stats snapshots).
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/cache.h"
#include "serve/stats.h"

namespace crossem {
namespace serve {
namespace {

std::vector<float> Emb(float v) { return {v, v + 1}; }

TEST(EmbeddingCacheTest, LruEvictionOrder) {
  EmbeddingCache cache(2);
  cache.Insert(1, 7, Emb(1));
  cache.Insert(2, 7, Emb(2));
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup(1, 7, &out));  // 1 now most-recent
  cache.Insert(3, 7, Emb(3));             // evicts 2
  EXPECT_TRUE(cache.Lookup(1, 7, &out));
  EXPECT_FALSE(cache.Lookup(2, 7, &out));
  EXPECT_TRUE(cache.Lookup(3, 7, &out));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(out, Emb(3));
}

TEST(EmbeddingCacheTest, FingerprintIsPartOfTheKey) {
  EmbeddingCache cache(8);
  cache.Insert(5, /*fingerprint=*/100, Emb(1));
  std::vector<float> out;
  // Same vertex under a retuned model's fingerprint: structural miss.
  EXPECT_FALSE(cache.Lookup(5, 200, &out));
  EXPECT_TRUE(cache.Lookup(5, 100, &out));
  EXPECT_EQ(out, Emb(1));
}

TEST(EmbeddingCacheTest, ReinsertRefreshesValueAndRecency) {
  EmbeddingCache cache(2);
  cache.Insert(1, 7, Emb(1));
  cache.Insert(2, 7, Emb(2));
  cache.Insert(1, 7, Emb(9));  // refresh, now most-recent
  cache.Insert(3, 7, Emb(3));  // evicts 2
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup(1, 7, &out));
  EXPECT_EQ(out, Emb(9));
  EXPECT_FALSE(cache.Lookup(2, 7, &out));
}

TEST(EmbeddingCacheTest, ZeroCapacityDisables) {
  EmbeddingCache cache(0);
  cache.Insert(1, 7, Emb(1));
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup(1, 7, &out));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(HistogramTest, PercentilesBoundTheData) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.max(), 1000);
  // Log2 buckets: percentile readouts are bucket upper bounds, so p50
  // lands within a factor of two above the true median...
  EXPECT_GE(h.Percentile(0.5), 500);
  EXPECT_LE(h.Percentile(0.5), 1023);
  // ...and p99/p100 are capped by the observed max.
  EXPECT_GE(h.Percentile(0.99), 990);
  EXPECT_LE(h.Percentile(0.99), 1000);
  EXPECT_EQ(h.Percentile(1.0), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
}

TEST(HistogramTest, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  h.Record(42);
  EXPECT_EQ(h.Percentile(0.01), 42);
  EXPECT_EQ(h.Percentile(0.99), 42);
}

TEST(StatsCollectorTest, SnapshotAggregates) {
  StatsCollector c;
  c.RecordReceived();
  c.RecordReceived();
  c.RecordReceived();
  c.RecordRejectedQueueFull();
  c.RecordRejectedShutdown();
  c.RecordExpired();
  c.RecordBatch(/*batch_size=*/2, /*cache_hits=*/1, /*cache_misses=*/1);
  c.RecordCompleted(/*latency_us=*/1500);
  c.RecordCompleted(/*latency_us=*/300);

  ServiceStats s = c.Snapshot();
  EXPECT_EQ(s.received, 3);
  EXPECT_EQ(s.rejected_queue_full, 1);
  EXPECT_EQ(s.rejected_shutdown, 1);
  EXPECT_EQ(s.expired_deadline, 1);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.batches, 1);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_DOUBLE_EQ(s.CacheHitRate(), 0.5);
  EXPECT_GE(s.latency_p99_us, 1500);
  EXPECT_EQ(s.latency_max_us, 1500);
  EXPECT_FALSE(s.ToString().empty());
}

}  // namespace
}  // namespace serve
}  // namespace crossem
