// MatchService behavior on a real (small, untuned) CrossEm: answer
// correctness against the offline matcher, micro-batching under
// concurrent clients, queue-full backpressure, per-request deadlines,
// cache reuse, and graceful shutdown drain. The ctest TSan re-run
// exercises the same suite with an 8-thread pool.
#include "serve/service.h"

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "clip/clip.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "serve/index.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace crossem {
namespace serve {
namespace {

/// One small untuned model + flat index over its image embeddings,
/// shared by every test (encoding is the slow part).
class MatchServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc = data::CubLikeConfig(0.4);
    ds_ = new data::CrossModalDataset(data::BuildDataset(dc));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(5);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);

    core::CrossEmOptions options;
    options.prompt_mode = core::PromptMode::kHard;
    matcher_ = new core::CrossEm(model_, &ds_->graph, tokenizer_, options);

    Tensor images = ds_->StackImages(ds_->TestImageIndices());
    Tensor embeddings = matcher_->EncodeImages(images);
    std::vector<std::string> ids;
    for (int64_t i = 0; i < embeddings.size(0); ++i) {
      ids.push_back("img" + std::to_string(i));
    }
    index_ = new FlatIndex();
    ASSERT_TRUE(index_->Add(embeddings, ids).ok());
    index_->set_model_fingerprint(matcher_->EncoderFingerprint());
  }

  static void TearDownTestSuite() {
    delete index_;
    delete matcher_;
    delete tokenizer_;
    delete model_;
    delete ds_;
  }

  static graph::VertexId Vertex(size_t i) {
    return ds_->entities[i % ds_->entities.size()];
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static core::CrossEm* matcher_;
  static FlatIndex* index_;
};

data::CrossModalDataset* MatchServiceFixture::ds_ = nullptr;
clip::ClipModel* MatchServiceFixture::model_ = nullptr;
text::Tokenizer* MatchServiceFixture::tokenizer_ = nullptr;
core::CrossEm* MatchServiceFixture::matcher_ = nullptr;
FlatIndex* MatchServiceFixture::index_ = nullptr;

TEST_F(MatchServiceFixture, AnswersMatchOfflineRanking) {
  MatchServiceOptions so;
  so.max_wait_micros = 0;  // no batching needed for a lone caller
  MatchService service(matcher_, index_, so);

  MatchRequest request;
  request.vertex = Vertex(0);
  request.k = 5;
  auto result = service.Match(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MatchResponse& response = result.value();
  ASSERT_EQ(response.matches.size(), 5u);

  // Must agree with a direct index search over the same embedding.
  Tensor emb = matcher_->EncodeVertices({request.vertex});
  auto direct = index_->Search(emb.data(), 5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(response.matches[i].image, direct[i].id);
    EXPECT_EQ(response.matches[i].similarity, direct[i].score);
    EXPECT_EQ(response.matches[i].image_id,
              index_->ids()[direct[i].id]);
  }
  // Probabilities: a softmax — positive, descending, summing under 1.
  float sum = 0.0f;
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_GT(response.matches[i].probability, 0.0f);
    if (i > 0) {
      EXPECT_LE(response.matches[i].probability,
                response.matches[i - 1].probability);
    }
    sum += response.matches[i].probability;
  }
  EXPECT_LE(sum, 1.0f + 1e-4f);
  service.Shutdown();
  EXPECT_EQ(service.Snapshot().completed, 1);
}

TEST_F(MatchServiceFixture, MinProbabilityFiltersTail) {
  MatchServiceOptions so;
  so.max_wait_micros = 0;
  MatchService service(matcher_, index_, so);

  MatchRequest request;
  request.vertex = Vertex(1);
  request.k = static_cast<int64_t>(index_->size());
  auto unfiltered = service.Match(request);
  ASSERT_TRUE(unfiltered.ok());
  ASSERT_GT(unfiltered.value().matches.size(), 1u);
  // Threshold just above the weakest returned probability: at least one
  // match must drop, the strongest must survive.
  const auto& all = unfiltered.value().matches;
  request.min_probability = all.back().probability * 1.0001f;
  auto filtered = service.Match(request);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered.value().matches.size(), all.size());
  ASSERT_FALSE(filtered.value().matches.empty());
  EXPECT_EQ(filtered.value().matches.front().image, all.front().image);
}

TEST_F(MatchServiceFixture, ConcurrentClientsAllComplete) {
  MatchServiceOptions so;
  so.max_batch = 8;
  so.max_wait_micros = 3000;
  MatchService service(matcher_, index_, so);

  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::vector<std::thread> clients;
  std::vector<Status> failures;
  std::mutex mu;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        MatchRequest request;
        request.vertex = Vertex(static_cast<size_t>(c + r));
        request.k = 3;
        auto result = service.Match(request);
        if (!result.ok() || result.value().matches.size() != 3u) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(result.ok() ? Status::Internal("wrong k")
                                         : result.status());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();

  for (const Status& st : failures) ADD_FAILURE() << st.ToString();
  ServiceStats stats = service.Snapshot();
  EXPECT_EQ(stats.received, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.rejected_queue_full, 0);
  EXPECT_EQ(stats.expired_deadline, 0);
  // Concurrency + the fill window must have produced real batches.
  EXPECT_LT(stats.batches, stats.completed);
  EXPECT_GT(stats.batch_size_mean, 1.0);
  // Only |entities| distinct vertices exist, so the cache must have hit.
  EXPECT_GT(stats.cache_hits, 0);
}

TEST_F(MatchServiceFixture, QueueFullRejectsWithUnavailable) {
  MatchServiceOptions so;
  so.max_queue = 2;
  so.max_batch = 64;             // never reached
  so.max_wait_micros = 300000;   // worker holds the batch open 300ms
  MatchService service(matcher_, index_, so);

  MatchRequest request;
  request.vertex = Vertex(0);
  // While the worker sits in its fill window, the queue caps at 2:
  // every submit beyond that must bounce immediately.
  std::vector<std::future<Result<MatchResponse>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.Submit(request));
  int rejected = 0;
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
          << result.status().ToString();
      // The rejection is actionable: it names the queue depth and a
      // retry-after hint so clients can back off intelligently.
      EXPECT_NE(result.status().message().find("queue full"),
                std::string::npos)
          << result.status().ToString();
      EXPECT_NE(result.status().message().find("of 2 pending"),
                std::string::npos)
          << result.status().ToString();
      EXPECT_NE(result.status().message().find("retry after"),
                std::string::npos)
          << result.status().ToString();
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 3);  // at most 2 queued + 1 already claimed
  service.Shutdown();
  ServiceStats stats = service.Snapshot();
  EXPECT_EQ(stats.rejected_queue_full, rejected);
  EXPECT_EQ(stats.completed + stats.rejected_queue_full, 6);
}

TEST_F(MatchServiceFixture, QueueFullRetryHintIsClampedToDeadline) {
  MatchServiceOptions so;
  so.max_queue = 2;
  so.max_batch = 64;
  so.max_wait_micros = 300000;  // natural drain hint: 300ms
  MatchService service(matcher_, index_, so);

  MatchRequest request;
  request.vertex = Vertex(0);
  request.deadline_micros = 5000;  // but the client only has 5ms left
  std::vector<std::future<Result<MatchResponse>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.Submit(request));
  int rejected = 0;
  for (auto& f : futures) {
    auto result = f.get();
    if (result.ok() ||
        result.status().code() != StatusCode::kUnavailable) {
      continue;  // completed, or expired while queued — not this test
    }
    // A retry hint past the request's own deadline is wasted work on
    // both sides: the 300ms drain estimate must shrink to the 5ms
    // budget.
    EXPECT_NE(result.status().message().find("retry after 5000us"),
              std::string::npos)
        << result.status().ToString();
    ++rejected;
  }
  EXPECT_GE(rejected, 3);
  service.Shutdown();
}

TEST_F(MatchServiceFixture, DeadlineExpiryIsReported) {
  MatchServiceOptions so;
  so.max_wait_micros = 50000;  // plenty of time for 1us deadlines to age out
  MatchService service(matcher_, index_, so);

  MatchRequest request;
  request.vertex = Vertex(2);
  request.deadline_micros = 1;
  auto result = service.Match(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  service.Shutdown();
  EXPECT_EQ(service.Snapshot().expired_deadline, 1);
}

TEST_F(MatchServiceFixture, ShutdownDrainsQueuedRequests) {
  MatchServiceOptions so;
  so.max_batch = 4;
  so.max_wait_micros = 500000;  // queue builds up while the worker waits
  MatchService service(matcher_, index_, so);

  std::vector<std::future<Result<MatchResponse>>> futures;
  for (int i = 0; i < 10; ++i) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(i));
    request.k = 2;
    futures.push_back(service.Submit(request));
  }
  // Graceful drain: every admitted request completes, none are dropped.
  service.Shutdown();
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().matches.size(), 2u);
  }
  ServiceStats stats = service.Snapshot();
  EXPECT_EQ(stats.received, 10);
  EXPECT_EQ(stats.completed, 10);
}

TEST_F(MatchServiceFixture, SubmitAfterShutdownIsRejected) {
  MatchServiceOptions so;
  MatchService service(matcher_, index_, so);
  service.Shutdown();

  MatchRequest request;
  request.vertex = Vertex(0);
  auto result = service.Submit(request).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.Snapshot().rejected_shutdown, 1);
}

TEST_F(MatchServiceFixture, InvalidRequestsRejectedUpFront) {
  MatchServiceOptions so;
  MatchService service(matcher_, index_, so);

  MatchRequest bad_k;
  bad_k.vertex = Vertex(0);
  bad_k.k = 0;
  EXPECT_EQ(service.Submit(bad_k).get().status().code(),
            StatusCode::kInvalidArgument);

  MatchRequest bad_vertex;
  bad_vertex.vertex = ds_->graph.NumVertices() + 100;
  EXPECT_EQ(service.Submit(bad_vertex).get().status().code(),
            StatusCode::kInvalidArgument);
  service.Shutdown();
}

TEST_F(MatchServiceFixture, CacheHitOnRepeatAndHnswBackendInterchangeable) {
  // Same service contract over the ANN backend.
  Tensor images = ds_->StackImages(ds_->TestImageIndices());
  Tensor embeddings = matcher_->EncodeImages(images);
  HnswIndex hnsw;
  std::vector<std::string> ids;
  for (int64_t i = 0; i < embeddings.size(0); ++i) {
    ids.push_back("img" + std::to_string(i));
  }
  ASSERT_TRUE(hnsw.Add(embeddings, ids).ok());

  MatchServiceOptions so;
  so.max_wait_micros = 0;
  MatchService service(matcher_, &hnsw, so);

  MatchRequest request;
  request.vertex = Vertex(3);
  request.k = 2;
  auto first = service.Match(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  auto second = service.Match(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  ASSERT_EQ(first.value().matches.size(), second.value().matches.size());
  for (size_t i = 0; i < first.value().matches.size(); ++i) {
    EXPECT_EQ(first.value().matches[i].image, second.value().matches[i].image);
    EXPECT_EQ(first.value().matches[i].probability,
              second.value().matches[i].probability);
  }
  service.Shutdown();
  EXPECT_EQ(service.Snapshot().cache_hits, 1);
}

}  // namespace
}  // namespace serve
}  // namespace crossem
