// Quantized-kernel op tests (DESIGN.md §17): every (format x kernel)
// cell of the dispatch table is run against a float64 scalar oracle and
// must land within its format's NMSE tolerance, at 1 and 8 threads —
// quantization is parallel over rows, so the thread sweep also proves
// the encoded bytes are thread-count independent. Plus the exhaustive
// 2^16 f16 round-trip sweep and the QuantizedVector cache-entry codec.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/quant.h"
#include "tensor/f16.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/random.h"

namespace crossem {
namespace serve {
namespace quant {
namespace {

// The op-test worlds: rows ~ mixture noise, queries ~ N(0, 1). Dims hit
// sub-block (1, 7, 31), exact-block (32, 64, 512), and straddling
// (33, 100) shapes so every tail path in the kernels runs.
constexpr int64_t kDims[] = {1, 7, 31, 32, 33, 64, 100, 512};
constexpr int64_t kRows = 64;
constexpr int64_t kQueries = 16;

/// Scalar float64 oracle over the original f32 rows.
double ExactDot(const float* row, const float* query, int64_t dim) {
  double acc = 0.0;
  for (int64_t d = 0; d < dim; ++d) {
    acc += static_cast<double>(row[d]) * static_cast<double>(query[d]);
  }
  return acc;
}

/// One cell of the (format x kernel) table: quantizes `rows` into a
/// QuantStore, scores every (row, query) pair through `dot`, and
/// returns NMSE = sum (exact - got)^2 / sum exact^2.
struct Cell {
  const char* format;
  const char* kernel;
  double tolerance;
  double (*dot)(const QuantStore& store, int64_t row, const float* query);
};

double CellF16Reference(const QuantStore& s, int64_t row, const float* q) {
  return DotF16Reference(s.f16_rows().data() + row * s.dim(), q, s.dim());
}
double CellF16Blocked(const QuantStore& s, int64_t row, const float* q) {
  return DotF16Blocked(s.f16_rows().data() + row * s.dim(), q, s.dim());
}
double CellInt8Reference(const QuantStore& s, int64_t row, const float* q) {
  return DotInt8Reference(s.int8_rows().data() + row * s.dim(),
                          s.scales().data() + row * s.blocks_per_row(), q,
                          s.dim());
}
double CellInt8Blocked(const QuantStore& s, int64_t row, const float* q) {
  return DotInt8Blocked(s.int8_rows().data() + row * s.dim(),
                        s.scales().data() + row * s.blocks_per_row(), q,
                        s.dim());
}

// f16 carries ~11 significand bits (per-element RMS relative error
// ~2^-12 -> NMSE ~1e-7); int8 one scale per 32 elements (~1e-5 after
// the block max soaks up the dynamic range). Tolerances leave an order
// of magnitude of headroom without letting a broken kernel through.
constexpr Cell kCells[] = {
    {"f16", "reference", 1e-6, CellF16Reference},
    {"f16", "blocked", 1e-6, CellF16Blocked},
    {"int8", "reference", 5e-4, CellInt8Reference},
    {"int8", "blocked", 5e-4, CellInt8Blocked},
};

QuantFormat FormatOf(const Cell& cell) {
  return std::string(cell.format) == "f16" ? QuantFormat::kF16
                                           : QuantFormat::kInt8;
}

TEST(QuantKernelTable, EveryCellWithinToleranceAtOneAndEightThreads) {
  for (const int threads : {1, 8}) {
    SetNumThreads(threads);
    for (const Cell& cell : kCells) {
      for (const int64_t dim : kDims) {
        Rng rng(0x9000 + dim);
        Tensor rows = Tensor::Randn({kRows, dim}, &rng, 1.0f);
        Tensor queries = Tensor::Randn({kQueries, dim}, &rng, 1.0f);

        QuantStore store;
        store.Init(FormatOf(cell), dim);
        store.AppendRows(rows.data(), kRows);

        double err = 0.0, ref = 0.0;
        for (int64_t r = 0; r < kRows; ++r) {
          for (int64_t q = 0; q < kQueries; ++q) {
            const float* query = queries.data() + q * dim;
            const double exact = ExactDot(rows.data() + r * dim, query, dim);
            const double got = cell.dot(store, r, query);
            err += (exact - got) * (exact - got);
            ref += exact * exact;
          }
        }
        const double nmse = ref > 0.0 ? err / ref : err;
        EXPECT_LE(nmse, cell.tolerance)
            << cell.format << " x " << cell.kernel << " dim " << dim << " @ "
            << threads << " threads";
        std::printf("quant-op %4s x %-9s dim %4lld threads %d nmse %.3e\n",
                    cell.format, cell.kernel, static_cast<long long>(dim),
                    threads, nmse);
      }
    }
  }
  SetNumThreads(0);
}

TEST(QuantKernelTable, QuantizationIsThreadCountIndependent) {
  const int64_t dim = 100;
  Rng rng(0xabc);
  Tensor rows = Tensor::Randn({256, dim}, &rng, 1.0f);
  for (const QuantFormat format : {QuantFormat::kF16, QuantFormat::kInt8}) {
    SetNumThreads(1);
    QuantStore one;
    one.Init(format, dim);
    one.AppendRows(rows.data(), 256);
    SetNumThreads(8);
    QuantStore eight;
    eight.Init(format, dim);
    eight.AppendRows(rows.data(), 256);
    SetNumThreads(0);
    EXPECT_EQ(one.f16_rows(), eight.f16_rows()) << FormatName(format);
    EXPECT_EQ(one.int8_rows(), eight.int8_rows()) << FormatName(format);
    EXPECT_EQ(one.scales(), eight.scales()) << FormatName(format);
  }
}

TEST(QuantKernelTable, DispatchedKernelsMatchTheirFixedEntries) {
  const int64_t dim = 67;  // two full blocks + a tail
  Rng rng(0x777);
  Tensor row = Tensor::Randn({1, dim}, &rng, 1.0f);
  Tensor query = Tensor::Randn({1, dim}, &rng, 1.0f);

  std::vector<uint16_t> h(dim);
  QuantizeRowF16(row.data(), dim, h.data());
  std::vector<int8_t> q8(dim);
  std::vector<float> scales(BlocksPerRow(dim));
  QuantizeRowInt8(row.data(), dim, q8.data(), scales.data());

  SetQuantKernel(QuantKernel::kReference);
  EXPECT_EQ(DotF16(h.data(), query.data(), dim),
            DotF16Reference(h.data(), query.data(), dim));
  EXPECT_EQ(DotInt8(q8.data(), scales.data(), query.data(), dim),
            DotInt8Reference(q8.data(), scales.data(), query.data(), dim));
  SetQuantKernel(QuantKernel::kAuto);
  EXPECT_EQ(DotF16(h.data(), query.data(), dim),
            DotF16Blocked(h.data(), query.data(), dim));
  EXPECT_EQ(DotInt8(q8.data(), scales.data(), query.data(), dim),
            DotInt8Blocked(q8.data(), scales.data(), query.data(), dim));
}

TEST(F16Test, AllFiniteHalvesRoundTripBitIdentical) {
  int64_t checked = 0;
  for (uint32_t h = 0; h <= 0xffffu; ++h) {
    const uint16_t half = static_cast<uint16_t>(h);
    const bool is_nan = (half & 0x7c00u) == 0x7c00u && (half & 0x3ffu) != 0;
    const uint16_t back = F32ToF16(F16ToF32(half));
    if (is_nan) {
      // NaN payloads collapse to the canonical quiet NaN — but stay NaN.
      EXPECT_EQ(back & 0x7c00u, 0x7c00u);
      EXPECT_NE(back & 0x3ffu, 0u);
    } else {
      ASSERT_EQ(back, half) << "half 0x" << std::hex << h;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 65536 - 2 * 1023);  // all but the NaN space
}

TEST(F16Test, RoundsToNearestEvenAndSaturates) {
  // 1.0 + 2^-11 is exactly between 1.0 and the next half; ties-to-even
  // keeps the even mantissa (1.0).
  EXPECT_EQ(F32ToF16(1.0f + 0x1p-11f), F32ToF16(1.0f));
  // Just above the midpoint rounds up.
  EXPECT_EQ(F32ToF16(1.0f + 0x1p-11f + 0x1p-20f), 0x3c01);
  // Largest finite half; anything at or past the rounding boundary is inf.
  EXPECT_EQ(F16ToF32(0x7bff), 65504.0f);
  EXPECT_EQ(F32ToF16(65504.0f), 0x7bff);
  EXPECT_EQ(F32ToF16(65520.0f), 0x7c00);  // rounds to 2^16 -> saturates
  EXPECT_EQ(F32ToF16(1e9f), 0x7c00);
  EXPECT_EQ(F32ToF16(-1e9f), 0xfc00);
  // Subnormals survive.
  EXPECT_EQ(F32ToF16(F16ToF32(0x0001)), 0x0001);
  // Signed zero survives.
  EXPECT_EQ(F32ToF16(-0.0f), 0x8000);
}

TEST(QuantizedVectorTest, EncodeDecodeEveryFormat) {
  const int64_t dim = 45;
  Rng rng(0x51);
  Tensor src = Tensor::Randn({1, dim}, &rng, 1.0f);
  for (const QuantFormat format :
       {QuantFormat::kF32, QuantFormat::kF16, QuantFormat::kInt8}) {
    QuantizedVector v = QuantizedVector::Encode(format, src.data(), dim);
    EXPECT_EQ(v.format, format);
    EXPECT_EQ(v.dim, dim);
    EXPECT_GT(v.ApproxBytes(), 0);
    std::vector<float> out;
    v.Decode(&out);
    ASSERT_EQ(static_cast<int64_t>(out.size()), dim);
    double err = 0.0, ref = 0.0;
    for (int64_t d = 0; d < dim; ++d) {
      err += (out[d] - src.data()[d]) * (out[d] - src.data()[d]);
      ref += src.data()[d] * src.data()[d];
    }
    const double tol = format == QuantFormat::kF32
                           ? 0.0
                           : (format == QuantFormat::kF16 ? 1e-6 : 5e-4);
    EXPECT_LE(err / ref, tol) << FormatName(format);
  }
  // Quantized entries are strictly smaller than f32 ones.
  QuantizedVector f32 = QuantizedVector::Encode(QuantFormat::kF32,
                                                src.data(), dim);
  QuantizedVector f16 = QuantizedVector::Encode(QuantFormat::kF16,
                                                src.data(), dim);
  QuantizedVector int8 = QuantizedVector::Encode(QuantFormat::kInt8,
                                                 src.data(), dim);
  EXPECT_LT(f16.ApproxBytes(), f32.ApproxBytes());
  EXPECT_LT(int8.ApproxBytes(), f16.ApproxBytes());
}

TEST(QuantFormatTest, NamesParseAndByteMathHolds) {
  QuantFormat f;
  EXPECT_TRUE(ParseFormat("f32", &f));
  EXPECT_EQ(f, QuantFormat::kF32);
  EXPECT_TRUE(ParseFormat("f16", &f));
  EXPECT_EQ(f, QuantFormat::kF16);
  EXPECT_TRUE(ParseFormat("int8", &f));
  EXPECT_EQ(f, QuantFormat::kInt8);
  EXPECT_FALSE(ParseFormat("int4", &f));
  EXPECT_STREQ(FormatName(QuantFormat::kInt8), "int8");

  EXPECT_EQ(BlocksPerRow(32), 1);
  EXPECT_EQ(BlocksPerRow(33), 2);
  // The acceptance ratios at the bench dim: f16 0.5x, int8 0.28125x.
  EXPECT_EQ(PayloadBytesPerRow(QuantFormat::kF32, 32), 128);
  EXPECT_EQ(PayloadBytesPerRow(QuantFormat::kF16, 32), 64);
  EXPECT_EQ(PayloadBytesPerRow(QuantFormat::kInt8, 32), 36);
}

}  // namespace
}  // namespace quant
}  // namespace serve
}  // namespace crossem
