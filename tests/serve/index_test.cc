// Serving-index contracts: flat exactness, HNSW recall and
// thread-count-independent construction, CEMCKPT2 roundtrip with
// corruption rejection, and the environment-driven fault drill on save.
#include "serve/index.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/random.h"

namespace crossem {
namespace serve {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::string> MakeIds(int64_t n) {
  std::vector<std::string> ids;
  ids.reserve(n);
  for (int64_t i = 0; i < n; ++i) ids.push_back("img" + std::to_string(i));
  return ids;
}

/// Clustered vectors (mixture of Gaussians): realistic ANN difficulty —
/// uniform random points in high dim are all nearly equidistant.
Tensor ClusteredVectors(int64_t n, int64_t dim, uint64_t seed,
                        int64_t clusters = 16) {
  Rng rng(seed);
  Tensor centers = Tensor::Randn({clusters, dim}, &rng, 1.0f);
  Tensor out = Tensor::Randn({n, dim}, &rng, 0.25f);
  float* o = out.data();
  const float* c = centers.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cl = rng.UniformInt(0, clusters - 1);
    for (int64_t d = 0; d < dim; ++d) o[i * dim + d] += c[cl * dim + d];
  }
  return out;
}

/// Brute-force exact top-k under the same ranking order the indexes use.
std::vector<int64_t> ExactTopK(const EmbeddingIndex& index, const float* q,
                               int64_t k) {
  std::vector<eval::ScoredId> all;
  for (int64_t i = 0; i < index.size(); ++i) {
    float dot = 0.0f;
    const float* v = index.vector(i);
    for (int64_t d = 0; d < index.dim(); ++d) dot += v[d] * q[d];
    all.push_back({i, dot});
  }
  std::sort(all.begin(), all.end(), eval::RanksBefore);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < std::min<int64_t>(k, all.size()); ++i) {
    ids.push_back(all[i].id);
  }
  return ids;
}

TEST(FlatIndexTest, MatchesBruteForceExactly) {
  const int64_t n = 300, dim = 8;
  Tensor vecs = ClusteredVectors(n, dim, 11);
  FlatIndex index;
  ASSERT_TRUE(index.Add(vecs, MakeIds(n)).ok());
  EXPECT_EQ(index.size(), n);
  EXPECT_EQ(index.dim(), dim);

  Tensor queries = ClusteredVectors(20, dim, 12);
  for (int64_t qi = 0; qi < 20; ++qi) {
    const float* q = queries.data() + qi * dim;
    auto got = index.Search(q, 7);
    auto want = ExactTopK(index, q, 7);
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j]) << "query " << qi << " rank " << j;
    }
  }
}

TEST(FlatIndexTest, ValidatesInput) {
  FlatIndex index;
  // id count mismatch
  EXPECT_FALSE(index.Add(Tensor::Zeros({3, 4}), MakeIds(2)).ok());
  // newline in an id would corrupt the serialized id table
  EXPECT_FALSE(index.Add(Tensor::Zeros({1, 4}), {"bad\nid"}).ok());
  // rank != 2
  EXPECT_FALSE(index.Add(Tensor::Zeros({4}), MakeIds(4)).ok());
  ASSERT_TRUE(index.Add(Tensor::Zeros({2, 4}), MakeIds(2)).ok());
  // dim fixed by first successful Add
  EXPECT_FALSE(index.Add(Tensor::Zeros({2, 5}), MakeIds(2)).ok());
}

TEST(FlatIndexTest, EmptyIndexReturnsNothing) {
  FlatIndex index;
  float q[4] = {1, 0, 0, 0};
  EXPECT_TRUE(index.Search(q, 5).empty());
}

TEST(HnswIndexTest, RecallAtTenAtLeast95Percent) {
  const int64_t n = 2000, dim = 16, num_queries = 100, k = 10;
  Tensor corpus = ClusteredVectors(n, dim, 21);
  Tensor queries = ClusteredVectors(num_queries, dim, 22);

  FlatIndex flat;
  ASSERT_TRUE(flat.Add(corpus, MakeIds(n)).ok());
  HnswOptions ho;
  ho.ef_search = 128;
  HnswIndex hnsw(ho);
  ASSERT_TRUE(hnsw.Add(corpus, MakeIds(n)).ok());

  // Queries are unnormalized; Search normalizes nothing on the query
  // side, but cosine ranking is scale-invariant so raw rows are fine.
  int64_t found = 0;
  for (int64_t qi = 0; qi < num_queries; ++qi) {
    const float* raw = queries.data() + qi * dim;
    std::vector<float> q(raw, raw + dim);
    auto exact = flat.Search(q.data(), k);
    auto approx = hnsw.Search(q.data(), k);
    for (const auto& e : exact) {
      for (const auto& a : approx) {
        if (a.id == e.id) {
          ++found;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(found) / static_cast<double>(num_queries * k);
  EXPECT_GE(recall, 0.95) << "recall@10 = " << recall;
}

TEST(HnswIndexTest, ConstructionIdenticalAtOneAndEightThreads) {
  const int64_t n = 600, dim = 12;
  Tensor corpus = ClusteredVectors(n, dim, 31);

  SetNumThreads(1);
  HnswIndex one;
  ASSERT_TRUE(one.Add(corpus, MakeIds(n)).ok());
  SetNumThreads(8);
  HnswIndex eight;
  ASSERT_TRUE(eight.Add(corpus, MakeIds(n)).ok());
  SetNumThreads(0);

  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(one.neighbors(i), eight.neighbors(i)) << "node " << i;
  }

  Tensor queries = ClusteredVectors(25, dim, 32);
  for (int64_t qi = 0; qi < 25; ++qi) {
    const float* q = queries.data() + qi * dim;
    auto a = one.Search(q, 10);
    auto b = eight.Search(q, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id);
      EXPECT_EQ(a[j].score, b[j].score);
    }
  }
}

TEST(HnswIndexTest, IncrementalAddEqualsOneShot) {
  const int64_t n = 400, dim = 10;
  Tensor corpus = ClusteredVectors(n, dim, 41);
  auto ids = MakeIds(n);

  HnswIndex whole;
  ASSERT_TRUE(whole.Add(corpus, ids).ok());

  // Same elements via two Add calls, split off a batch boundary
  // (batches are per-Add, so alignment matters for bit-identity only
  // when the split is a multiple of build_batch).
  const int64_t split = whole.options().build_batch * 3;
  Tensor first = Tensor::Zeros({split, dim});
  Tensor second = Tensor::Zeros({n - split, dim});
  std::copy(corpus.data(), corpus.data() + split * dim, first.data());
  std::copy(corpus.data() + split * dim, corpus.data() + n * dim,
            second.data());
  HnswIndex incremental;
  ASSERT_TRUE(incremental
                  .Add(first, {ids.begin(), ids.begin() + split})
                  .ok());
  ASSERT_TRUE(incremental
                  .Add(second, {ids.begin() + split, ids.end()})
                  .ok());

  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(whole.neighbors(i), incremental.neighbors(i)) << "node " << i;
  }
}

TEST(IndexIoTest, SaveLoadRoundtripBothBackends) {
  const int64_t n = 250, dim = 8;
  Tensor corpus = ClusteredVectors(n, dim, 51);
  Tensor queries = ClusteredVectors(10, dim, 52);

  for (const char* backend_name : {"flat", "hnsw"}) {
    const std::string backend = backend_name;
    std::unique_ptr<EmbeddingIndex> index;
    if (backend == "flat") {
      index = std::make_unique<FlatIndex>();
    } else {
      index = std::make_unique<HnswIndex>();
    }
    ASSERT_TRUE(index->Add(corpus, MakeIds(n)).ok());
    index->set_model_fingerprint(0xfeedbeef);
    const std::string path = TempPath(("roundtrip_" + backend + ".cidx").c_str());
    ASSERT_TRUE(index->Save(path).ok());

    auto loaded = EmbeddingIndex::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const EmbeddingIndex& re = *loaded.value();
    EXPECT_EQ(re.backend(), backend);
    EXPECT_EQ(re.size(), n);
    EXPECT_EQ(re.dim(), dim);
    EXPECT_EQ(re.model_fingerprint(), 0xfeedbeefu);
    EXPECT_EQ(re.ids(), index->ids());

    for (int64_t qi = 0; qi < 10; ++qi) {
      const float* q = queries.data() + qi * dim;
      auto a = index->Search(q, 10);
      auto b = re.Search(q, 10);
      ASSERT_EQ(a.size(), b.size()) << backend;
      for (size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].id, b[j].id) << backend;
        EXPECT_EQ(a[j].score, b[j].score) << backend;
      }
    }
    std::remove(path.c_str());
  }
}

TEST(IndexIoTest, CorruptFileRejectedWholesale) {
  const int64_t n = 64, dim = 6;
  Tensor corpus = ClusteredVectors(n, dim, 61);
  HnswIndex index;
  ASSERT_TRUE(index.Add(corpus, MakeIds(n)).ok());
  const std::string path = TempPath("corrupt.cidx");
  ASSERT_TRUE(index.Save(path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 128u);

  // Flip one byte in the middle (vector payload), one near the end
  // (neighbor lists / trailer), and truncate — every mutation must be
  // rejected by the CRC or structural validation.
  for (size_t pos : {bytes.size() / 2, bytes.size() - 16}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bad;
    out.close();
    auto loaded = EmbeddingIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "flipped byte at " << pos;
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 3);
    out.close();
    EXPECT_FALSE(EmbeddingIndex::Load(path).ok());
  }
  std::remove(path.c_str());
}

TEST(IndexIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(EmbeddingIndex::Load(TempPath("nonexistent.cidx")).ok());
}

TEST(DeadlineTest, NoDeadlineIsTheDefaultAndExactAcrossBackends) {
  const int64_t n = 200, dim = 8;
  Tensor vecs = ClusteredVectors(n, dim, 31);
  FlatIndex index;
  ASSERT_TRUE(index.Add(vecs, MakeIds(n)).ok());
  Tensor queries = ClusteredVectors(4, dim, 32);
  for (int64_t qi = 0; qi < 4; ++qi) {
    const float* q = queries.data() + qi * dim;
    auto plain = index.Search(q, 5);
    auto sentinel = index.Search(q, 5, kNoSearchDeadline);
    auto generous = index.Search(
        q, 5, std::chrono::steady_clock::now() + std::chrono::hours(1));
    ASSERT_EQ(plain.size(), sentinel.size());
    ASSERT_EQ(plain.size(), generous.size());
    for (size_t j = 0; j < plain.size(); ++j) {
      EXPECT_EQ(plain[j].id, sentinel[j].id);
      EXPECT_EQ(plain[j].score, sentinel[j].score);
      EXPECT_EQ(plain[j].id, generous[j].id);
      EXPECT_EQ(plain[j].score, generous[j].score);
    }
  }
}

TEST(DeadlineTest, ExpiredDeadlineExitsEarlyBothBackends) {
  const int64_t n = 4096, dim = 16;
  Tensor vecs = ClusteredVectors(n, dim, 33);
  FlatIndex flat;
  ASSERT_TRUE(flat.Add(vecs, MakeIds(n)).ok());
  HnswIndex hnsw;
  ASSERT_TRUE(hnsw.Add(vecs, MakeIds(n)).ok());
  Tensor queries = ClusteredVectors(4, dim, 34);
  // A deadline already in the past: the scan must bail out with a
  // partial (possibly empty) result instead of a full answer.
  const SearchDeadline expired =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  for (int64_t qi = 0; qi < 4; ++qi) {
    const float* q = queries.data() + qi * dim;
    auto flat_cut = flat.Search(q, 10, expired);
    auto hnsw_cut = hnsw.Search(q, 10, expired);
    // Flat checks per chunk before scanning it; an already-expired
    // deadline therefore yields nothing. HNSW bails pre-descent.
    EXPECT_TRUE(flat_cut.empty());
    EXPECT_TRUE(hnsw_cut.empty());
  }
}

TEST(PreNormalizedTest, AddPreNormalizedIsBitwiseVerbatim) {
  const int64_t n = 64, dim = 8;
  Tensor vecs = ClusteredVectors(n, dim, 41);
  FlatIndex normalized;
  ASSERT_TRUE(normalized.Add(vecs, MakeIds(n)).ok());

  // Feed the already-normalized rows back through AddPreNormalized: the
  // copy must be verbatim (re-normalizing normalized rows would flip
  // low-order bits and break sharded bitwise identity).
  std::vector<float> rows(static_cast<size_t>(n * dim));
  for (int64_t i = 0; i < n; ++i) {
    const float* v = normalized.vector(i);
    std::copy(v, v + dim, rows.begin() + static_cast<size_t>(i * dim));
  }
  FlatIndex verbatim;
  ASSERT_TRUE(
      verbatim.AddPreNormalized(rows.data(), n, dim, MakeIds(n)).ok());
  ASSERT_EQ(verbatim.size(), n);
  ASSERT_EQ(verbatim.dim(), dim);
  for (int64_t i = 0; i < n; ++i) {
    const float* a = normalized.vector(i);
    const float* b = verbatim.vector(i);
    for (int64_t d = 0; d < dim; ++d) {
      EXPECT_EQ(a[d], b[d]) << "row " << i << " dim " << d;
    }
  }
  // And searches over the verbatim copy score bitwise-identically.
  Tensor queries = ClusteredVectors(4, dim, 42);
  for (int64_t qi = 0; qi < 4; ++qi) {
    const float* q = queries.data() + qi * dim;
    auto a = normalized.Search(q, 5);
    auto b = verbatim.Search(q, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id);
      EXPECT_EQ(a[j].score, b[j].score);
    }
  }
}

// Runs only from the serve_env_fault ctest entry (CROSSEM_FAULT_SPEC
// set): every injected I/O failure must surface as a Status — never an
// abort — and the atomic-write tmp file must not survive.
TEST(ServeIndexEnvFaultTest, SaveSurfacesInjectedFaults) {
  const char* spec = std::getenv("CROSSEM_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') {
    GTEST_SKIP() << "CROSSEM_FAULT_SPEC not set";
  }
  Tensor corpus = ClusteredVectors(32, 4, 71);
  FlatIndex index;
  ASSERT_TRUE(index.Add(corpus, MakeIds(32)).ok());
  const std::string path = TempPath("env_fault.cidx");
  Status st = index.Save(path);
  EXPECT_FALSE(st.ok()) << "spec '" << spec << "' should fail the save";
  EXPECT_FALSE(io::FileExists(path + ".tmp"));
  fault::Clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace crossem
