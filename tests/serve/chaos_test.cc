// Chaos drills for the resilient sharded serving layer: fault-free
// bitwise identity with the single-index MatchService, graceful
// degradation (partial results, coverage, breaker) under blackholed /
// stuck / corrupt shards, hedging against slow shards, and breaker
// recovery once a fault clears. Fault schedules are deterministic
// (util/fault_injection serve_shard specs), so every drill is
// reproducible.
#include "serve/sharded.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clip/clip.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "serve/index.h"
#include "serve/service.h"
#include "text/tokenizer.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/status.h"

namespace crossem {
namespace serve {
namespace {

/// One small untuned model, a flat index over its test-image
/// embeddings, and the per-row true classes (for class-based recall) —
/// shared by every drill.
class ChaosFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc = data::CubLikeConfig(0.4);
    ds_ = new data::CrossModalDataset(data::BuildDataset(dc));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(5);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);

    core::CrossEmOptions options;
    options.prompt_mode = core::PromptMode::kHard;
    matcher_ = new core::CrossEm(model_, &ds_->graph, tokenizer_, options);

    const std::vector<int64_t> test_rows = ds_->TestImageIndices();
    Tensor images = ds_->StackImages(test_rows);
    Tensor embeddings = matcher_->EncodeImages(images);
    std::vector<std::string> ids;
    row_class_ = new std::vector<int64_t>();
    for (int64_t i = 0; i < embeddings.size(0); ++i) {
      ids.push_back("img" + std::to_string(i));
      row_class_->push_back(
          ds_->images[static_cast<size_t>(test_rows[i])].true_class);
    }
    index_ = new FlatIndex();
    ASSERT_TRUE(index_->Add(embeddings, ids).ok());
    index_->set_model_fingerprint(matcher_->EncoderFingerprint());
  }

  static void TearDownTestSuite() {
    delete index_;
    delete row_class_;
    delete matcher_;
    delete tokenizer_;
    delete model_;
    delete ds_;
  }

  void TearDown() override { fault::Clear(); }

  static graph::VertexId Vertex(size_t i) {
    return ds_->entities[i % ds_->entities.size()];
  }
  static int64_t NumClasses() {
    return static_cast<int64_t>(ds_->entities.size());
  }

  static std::unique_ptr<ShardedIndex> MakeShards(int64_t n,
                                                  const char* backend =
                                                      "flat") {
    ShardedIndexOptions so;
    so.num_shards = n;
    so.backend = backend;
    auto sharded = ShardedIndex::Partition(*index_, so);
    EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
    return sharded.MoveValue();
  }

  /// Class-based recall@10 over one query per entity class: the top 10
  /// must contain an image of the query's true class. Robust to losing
  /// a shard (class images spread across shards), unlike set overlap
  /// with the full-index top-10.
  static double ClassRecallAt10(
      const std::vector<Result<MatchResponse>>& results) {
    int64_t hit = 0;
    for (size_t c = 0; c < results.size(); ++c) {
      EXPECT_TRUE(results[c].ok()) << results[c].status().ToString();
      if (!results[c].ok()) continue;
      for (const RankedMatch& m : results[c].value().matches) {
        if ((*row_class_)[static_cast<size_t>(m.image)] ==
            static_cast<int64_t>(c)) {
          ++hit;
          break;
        }
      }
    }
    return results.empty()
               ? 0.0
               : static_cast<double>(hit) / static_cast<double>(results.size());
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static core::CrossEm* matcher_;
  static FlatIndex* index_;
  static std::vector<int64_t>* row_class_;
};

data::CrossModalDataset* ChaosFixture::ds_ = nullptr;
clip::ClipModel* ChaosFixture::model_ = nullptr;
text::Tokenizer* ChaosFixture::tokenizer_ = nullptr;
core::CrossEm* ChaosFixture::matcher_ = nullptr;
FlatIndex* ChaosFixture::index_ = nullptr;
std::vector<int64_t>* ChaosFixture::row_class_ = nullptr;

ShardedServiceOptions QuickOptions() {
  ShardedServiceOptions o;
  o.base.max_wait_micros = 0;  // no batching for lone callers
  return o;
}

TEST_F(ChaosFixture, PartitionCoversEveryRowExactlyOnce) {
  auto sharded = MakeShards(4);
  ASSERT_EQ(sharded->num_shards(), 4);
  EXPECT_EQ(sharded->size(), index_->size());
  EXPECT_EQ(sharded->dim(), index_->dim());
  EXPECT_EQ(sharded->model_fingerprint(), index_->model_fingerprint());
  int64_t total = 0;
  for (int64_t s = 0; s < 4; ++s) {
    total += sharded->shard_size(s);
    EXPECT_GT(sharded->shard_size(s), 0) << "empty shard " << s;
  }
  EXPECT_EQ(total, index_->size());
}

/// The acceptance contract: with no faults armed, the sharded service's
/// responses are bitwise-identical to the single-index MatchService —
/// same rows, same similarities, same Eq. 4 probabilities — at 1 and 8
/// threads, for a 4-shard flat split and a 1-shard hnsw "split".
TEST_F(ChaosFixture, FaultFreeBitwiseIdenticalToSingleService) {
  auto flat4 = MakeShards(4, "flat");

  auto hnsw_source = std::make_unique<HnswIndex>();
  {
    const std::vector<int64_t> test_rows = ds_->TestImageIndices();
    Tensor images = ds_->StackImages(test_rows);
    Tensor embeddings = matcher_->EncodeImages(images);
    std::vector<std::string> ids;
    for (int64_t i = 0; i < embeddings.size(0); ++i) {
      ids.push_back("img" + std::to_string(i));
    }
    ASSERT_TRUE(hnsw_source->Add(embeddings, ids).ok());
    hnsw_source->set_model_fingerprint(matcher_->EncoderFingerprint());
  }
  ShardedIndexOptions h1;
  h1.num_shards = 1;
  h1.backend = "hnsw";
  auto hnsw1 = ShardedIndex::Partition(*hnsw_source, h1);
  ASSERT_TRUE(hnsw1.ok()) << hnsw1.status().ToString();

  const int original_threads = GetNumThreads();
  for (int threads : {1, 8}) {
    SetNumThreads(threads);
    struct Case {
      const EmbeddingIndex* single;
      const ShardedIndex* sharded;
      const char* name;
    };
    const Case cases[] = {{index_, flat4.get(), "flat-4"},
                          {hnsw_source.get(), hnsw1.value().get(), "hnsw-1"}};
    for (const Case& c : cases) {
      SCOPED_TRACE(std::string(c.name) + " @" + std::to_string(threads) +
                   " threads");
      MatchServiceOptions so;
      so.max_wait_micros = 0;
      MatchService single(matcher_, c.single, so);
      ShardedMatchService sharded(matcher_, c.sharded, QuickOptions());
      for (int64_t q = 0; q < std::min<int64_t>(NumClasses(), 12); ++q) {
        MatchRequest request;
        request.vertex = Vertex(static_cast<size_t>(q));
        request.k = 10;
        auto a = single.Match(request);
        auto b = sharded.Match(request);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        EXPECT_EQ(b.value().coverage, 1.0);
        EXPECT_FALSE(b.value().degraded);
        ASSERT_EQ(a.value().matches.size(), b.value().matches.size());
        for (size_t i = 0; i < a.value().matches.size(); ++i) {
          EXPECT_EQ(a.value().matches[i].image, b.value().matches[i].image);
          EXPECT_EQ(a.value().matches[i].image_id,
                    b.value().matches[i].image_id);
          // Bitwise: == on floats, not near.
          EXPECT_EQ(a.value().matches[i].similarity,
                    b.value().matches[i].similarity);
          EXPECT_EQ(a.value().matches[i].probability,
                    b.value().matches[i].probability);
        }
      }
      sharded.Shutdown();
      single.Shutdown();
    }
  }
  SetNumThreads(original_threads);
}

/// The headline drill: 1 of 4 shards blackholed (every call dropped).
/// Queries must all succeed with partial coverage, class recall@10 must
/// hold >= 0.95 of the healthy value, and once the breaker opens the
/// steady-state latency must stay in the same regime as fault-free.
TEST_F(ChaosFixture, BlackholedShardDegradesGracefully) {
  auto sharded = MakeShards(4);
  ShardedServiceOptions o = QuickOptions();
  o.resilience.attempt_timeout_micros = 10000;
  o.resilience.max_attempts = 2;
  o.resilience.hedge_delay_micros = 3000;
  o.resilience.breaker_failure_threshold = 3;
  // Cooldown far beyond the drill so no half-open probe perturbs the
  // steady-state latency we are about to measure.
  o.resilience.breaker_cooldown_micros = 60 * 1000 * 1000;

  const int64_t queries = std::min<int64_t>(NumClasses(), 24);

  // Healthy pass: latencies + recall baseline (cache warms here; the
  // degraded pass below reuses it, keeping the comparison encode-free).
  std::vector<Result<MatchResponse>> healthy;
  std::vector<int64_t> healthy_us;
  {
    ShardedMatchService service(matcher_, sharded.get(), o);
    for (int64_t q = 0; q < queries; ++q) {
      MatchRequest request;
      request.vertex = Vertex(static_cast<size_t>(q));
      request.k = 10;
      const auto t0 = std::chrono::steady_clock::now();
      healthy.push_back(service.Match(request));
      healthy_us.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      ASSERT_TRUE(healthy.back().ok());
      EXPECT_EQ(healthy.back().value().coverage, 1.0);
    }
    service.Shutdown();
  }
  const double healthy_recall = ClassRecallAt10(healthy);
  ASSERT_GT(healthy_recall, 0.0);

  // Blackhole shard 2: every call to it is dropped on the floor.
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kDrop;
  spec.shard = 2;
  fault::ArmShardFault(spec);

  ShardedMatchService service(matcher_, sharded.get(), o);
  // Warmup until the breaker on shard 2 opens (bounded by the failure
  // threshold: each query burns max_attempts+hedge failed calls).
  for (int64_t q = 0; q < 16 && service.breaker_state(2) !=
                                    CircuitBreaker::State::kOpen;
       ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 10;
    auto r = service.Match(request);
    ASSERT_TRUE(r.ok()) << r.status().ToString();  // degraded, never failed
  }
  ASSERT_EQ(service.breaker_state(2), CircuitBreaker::State::kOpen);

  // Steady state: shard 2 short-circuited, no query errors, explicit
  // partial coverage.
  const double expected_coverage =
      1.0 - static_cast<double>(sharded->shard_size(2)) /
                static_cast<double>(sharded->size());
  std::vector<Result<MatchResponse>> degraded;
  std::vector<int64_t> degraded_us;
  for (int64_t q = 0; q < queries; ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 10;
    const auto t0 = std::chrono::steady_clock::now();
    degraded.push_back(service.Match(request));
    degraded_us.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ASSERT_TRUE(degraded.back().ok())
        << degraded.back().status().ToString();
    EXPECT_TRUE(degraded.back().value().degraded);
    EXPECT_NEAR(degraded.back().value().coverage, expected_coverage, 1e-9);
  }

  // Recall floor: >= 0.95x the healthy ensemble.
  const double degraded_recall = ClassRecallAt10(degraded);
  EXPECT_GE(degraded_recall, 0.95 * healthy_recall)
      << "degraded " << degraded_recall << " healthy " << healthy_recall;

  // Latency: steady-state p99 within 2x fault-free (with an absolute
  // floor so scheduler noise on tiny CI boxes cannot flake the drill).
  std::sort(healthy_us.begin(), healthy_us.end());
  std::sort(degraded_us.begin(), degraded_us.end());
  const int64_t healthy_p99 = healthy_us[healthy_us.size() * 99 / 100];
  const int64_t degraded_p99 = degraded_us[degraded_us.size() * 99 / 100];
  EXPECT_LE(degraded_p99,
            std::max<int64_t>(2 * healthy_p99, 20000))
      << "degraded p99 " << degraded_p99 << "us vs healthy " << healthy_p99
      << "us";

  ResilienceStats rs = service.ResilienceSnapshot();
  EXPECT_GT(rs.shard_failures, 0);
  EXPECT_GE(rs.breaker_opens, 1);
  EXPECT_GT(rs.breaker_skips, 0);
  EXPECT_GT(rs.degraded_responses, 0);
  service.Shutdown();
}

/// Corrupt scores must be caught by response validation and treated as
/// shard failures — degraded coverage, never a wrong answer.
TEST_F(ChaosFixture, CorruptShardResponsesAreRejectedNotServed) {
  auto sharded = MakeShards(4);
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kCorrupt;
  spec.shard = 1;
  fault::ArmShardFault(spec);

  ShardedServiceOptions o = QuickOptions();
  o.resilience.max_attempts = 2;
  o.resilience.breaker_cooldown_micros = 60 * 1000 * 1000;
  ShardedMatchService service(matcher_, sharded.get(), o);
  for (int64_t q = 0; q < 6; ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 10;
    auto r = service.Match(request);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().degraded);
    EXPECT_LT(r.value().coverage, 1.0);
    for (const RankedMatch& m : r.value().matches) {
      // No corrupt magnitude ever reaches a caller.
      EXPECT_LE(std::abs(m.similarity), 1.0001f);
    }
  }
  ResilienceStats rs = service.ResilienceSnapshot();
  EXPECT_GT(rs.corrupt_rejected, 0);
  service.Shutdown();
}

/// A shard that answers slowly (but correctly) should be rescued by the
/// hedged second request: full coverage, hedge wins recorded.
TEST_F(ChaosFixture, HedgingRescuesSlowShard) {
  auto sharded = MakeShards(2);
  // Every 2nd call to shard 0 is delayed well past the hedge trigger.
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kDelay;
  spec.delay_ms = 40;
  spec.shard = 0;
  spec.every = 2;
  fault::ArmShardFault(spec);

  ShardedServiceOptions o = QuickOptions();
  o.resilience.attempt_timeout_micros = 400000;  // delay must NOT time out
  o.resilience.hedge_delay_micros = 4000;
  o.resilience.hedge_min_samples = 1 << 30;  // pin the fixed hedge delay
  ShardedMatchService service(matcher_, sharded.get(), o);
  for (int64_t q = 0; q < 8; ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 5;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = service.Match(request);
    const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().coverage, 1.0);
    EXPECT_FALSE(r.value().degraded);
    // A hedge that wins keeps the query far below the 40ms injected
    // delay + attempt timeout worst case.
    EXPECT_LT(us, 300000);
  }
  ResilienceStats rs = service.ResilienceSnapshot();
  EXPECT_GT(rs.hedges, 0);
  EXPECT_GT(rs.hedge_wins, 0);
  service.Shutdown();
}

/// Stuck shard: both its workers end up held hostage; queries degrade
/// but never fail, and Shutdown() still completes (the stuck drill
/// releases on shutdown).
TEST_F(ChaosFixture, StuckShardDegradesAndShutdownCompletes) {
  auto sharded = MakeShards(4);
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kStuck;
  spec.shard = 0;
  fault::ArmShardFault(spec);

  ShardedServiceOptions o = QuickOptions();
  o.resilience.attempt_timeout_micros = 8000;
  o.resilience.max_attempts = 2;
  o.resilience.hedge_delay_micros = 2000;
  o.resilience.breaker_cooldown_micros = 60 * 1000 * 1000;
  ShardedMatchService service(matcher_, sharded.get(), o);
  for (int64_t q = 0; q < 8; ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 5;
    auto r = service.Match(request);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ResilienceStats rs = service.ResilienceSnapshot();
  EXPECT_GT(rs.shard_failures, 0);
  service.Shutdown();  // must not hang on the hostage workers
}

/// Breaker lifecycle: open under a sticky fault, then recover through
/// the half-open probe once the fault clears.
TEST_F(ChaosFixture, BreakerRecoversAfterFaultClears) {
  auto sharded = MakeShards(2);
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kDrop;
  spec.shard = 1;
  fault::ArmShardFault(spec);

  ShardedServiceOptions o = QuickOptions();
  o.resilience.attempt_timeout_micros = 8000;
  o.resilience.max_attempts = 2;
  o.resilience.breaker_failure_threshold = 2;
  o.resilience.breaker_cooldown_micros = 30000;  // fast recovery drill
  ShardedMatchService service(matcher_, sharded.get(), o);

  for (int64_t q = 0; q < 12 && service.breaker_state(1) !=
                                    CircuitBreaker::State::kOpen;
       ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 5;
    ASSERT_TRUE(service.Match(request).ok());
  }
  ASSERT_EQ(service.breaker_state(1), CircuitBreaker::State::kOpen);

  fault::Clear();  // the shard heals
  std::this_thread::sleep_for(std::chrono::milliseconds(40));  // > cooldown

  // The next queries admit the half-open probe, which now succeeds and
  // closes the breaker; coverage returns to full.
  bool recovered = false;
  for (int64_t q = 0; q < 12 && !recovered; ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 5;
    auto r = service.Match(request);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    recovered = r.value().coverage == 1.0 &&
                service.breaker_state(1) == CircuitBreaker::State::kClosed;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(recovered);
  service.Shutdown();
}

/// Mid-flight request deadlines degrade coverage instead of failing the
/// query: a deadline far too short for a delayed shard still yields an
/// OK partial response once at least one shard answered.
TEST_F(ChaosFixture, RequestDeadlineYieldsPartialNotError) {
  auto sharded = MakeShards(4);
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kDelay;
  spec.delay_ms = 60;
  spec.shard = 3;
  fault::ArmShardFault(spec);

  ShardedServiceOptions o = QuickOptions();
  o.resilience.hedging = false;  // let the delay bite
  o.resilience.max_attempts = 1;
  ShardedMatchService service(matcher_, sharded.get(), o);

  // Warm the embedding cache so the deadline budget goes to the gather.
  {
    MatchRequest warm;
    warm.vertex = Vertex(0);
    warm.k = 5;
    ASSERT_TRUE(service.Match(warm).ok());
  }
  MatchRequest request;
  request.vertex = Vertex(0);
  request.k = 5;
  request.deadline_micros = 25000;  // << the 60ms injected delay
  auto r = service.Match(request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);
  EXPECT_LT(r.value().coverage, 1.0);
  EXPECT_GT(r.value().coverage, 0.0);
  service.Shutdown();
}

/// Environment-driven drill (the ctest chaos entries): runs only when
/// CROSSEM_FAULT_SPEC armed serve_shard faults from the environment,
/// and asserts the blanket invariant — whatever the schedule, queries
/// never error and responses stay structurally valid.
TEST_F(ChaosFixture, ChaosEnvDrillNeverFailsQueries) {
  if (std::getenv("CROSSEM_FAULT_SPEC") == nullptr) {
    GTEST_SKIP() << "CROSSEM_FAULT_SPEC not set";
  }
  auto sharded = MakeShards(4);
  ShardedServiceOptions o = QuickOptions();
  o.resilience.attempt_timeout_micros = 30000;
  o.resilience.max_attempts = 2;
  o.resilience.hedge_delay_micros = 5000;
  ShardedMatchService service(matcher_, sharded.get(), o);
  for (int64_t q = 0; q < 16; ++q) {
    MatchRequest request;
    request.vertex = Vertex(static_cast<size_t>(q));
    request.k = 10;
    auto r = service.Match(request);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GE(r.value().coverage, 0.0);
    EXPECT_LE(r.value().coverage, 1.0);
    for (const RankedMatch& m : r.value().matches) {
      EXPECT_LE(std::abs(m.similarity), 1.0001f);
      EXPECT_GE(m.image, 0);
      EXPECT_LT(m.image, sharded->size());
    }
  }
  service.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace crossem
