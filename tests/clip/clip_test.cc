#include "clip/clip.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace crossem {
namespace clip {
namespace {

ClipConfig SmallConfig() {
  ClipConfig c;
  c.vocab_size = 50;
  c.text_context = 12;
  c.model_dim = 16;
  c.text_layers = 1;
  c.text_heads = 2;
  c.image_layers = 1;
  c.image_heads = 2;
  c.patch_dim = 8;
  c.max_patches = 6;
  c.embed_dim = 12;
  return c;
}

std::vector<std::vector<int64_t>> PaddedBatch(int64_t b, int64_t t) {
  std::vector<std::vector<int64_t>> batch;
  for (int64_t i = 0; i < b; ++i) {
    std::vector<int64_t> row(static_cast<size_t>(t), text::Vocabulary::kPad);
    row[0] = text::Vocabulary::kCls;
    row[1] = 5 + i;
    row[2] = text::Vocabulary::kSep;
    batch.push_back(std::move(row));
  }
  return batch;
}

TEST(TextEncoderTest, OutputShapeAndNormalization) {
  Rng rng(1);
  TextEncoder enc(SmallConfig(), &rng);
  Tensor e = enc.Forward(PaddedBatch(3, 12));
  EXPECT_EQ(e.shape(), (Shape{3, 12}));
  for (int64_t r = 0; r < 3; ++r) {
    double norm2 = 0;
    for (int64_t c = 0; c < 12; ++c) {
      norm2 += static_cast<double>(e.at(r * 12 + c)) * e.at(r * 12 + c);
    }
    EXPECT_NEAR(norm2, 1.0, 1e-4);
  }
}

TEST(TextEncoderTest, PaddingMaskMarksRealTokens) {
  Rng rng(2);
  TextEncoder enc(SmallConfig(), &rng);
  auto batch = PaddedBatch(1, 12);
  Tensor mask = enc.PaddingMask(batch);
  EXPECT_EQ(mask.shape(), (Shape{1, 12}));
  EXPECT_FLOAT_EQ(mask.at(0), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(1), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(2), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(3), 0.0f);
}

TEST(TextEncoderTest, PaddingDoesNotChangeEmbedding) {
  // Same tokens, different padding tails: identical embeddings.
  Rng rng(3);
  ClipConfig cfg = SmallConfig();
  TextEncoder enc(cfg, &rng);
  std::vector<int64_t> row = {text::Vocabulary::kCls, 7, 9,
                              text::Vocabulary::kSep};
  std::vector<int64_t> short_row = row;
  short_row.resize(8, text::Vocabulary::kPad);
  std::vector<int64_t> long_row = row;
  long_row.resize(12, text::Vocabulary::kPad);
  // Run each padded variant through its own forward; the mask must make
  // the [CLS] representation identical up to numerical noise.
  Tensor e1 = enc.Forward({short_row});
  Tensor e2 = enc.Forward({long_row});
  for (int64_t i = 0; i < e1.numel(); ++i) {
    EXPECT_NEAR(e1.at(i), e2.at(i), 1e-4f);
  }
}

TEST(TextEncoderTest, EmbeddingEntryMatchesTokenEntry) {
  // ForwardFromEmbeddings(EmbedTokens(batch) - positional) must equal
  // Forward(batch): both add positions inside.
  Rng rng(4);
  TextEncoder enc(SmallConfig(), &rng);
  auto batch = PaddedBatch(2, 12);
  // EmbedTokens already adds positions, so subtract them via a raw
  // token-embedding path: reuse EmbedTokens and strip the positional
  // by embedding a zero-position trick is fiddly; instead check the
  // public contract: ForwardFromEmbeddings on token embeddings WITHOUT
  // positions equals Forward. Build token-only embeddings by hand.
  std::vector<int64_t> flat;
  for (const auto& row : batch) flat.insert(flat.end(), row.begin(), row.end());
  Tensor tok = enc.token_embedding().Forward(flat);
  tok = ops::Reshape(tok, {2, 12, enc.model_dim()});
  Tensor mask = enc.PaddingMask(batch);
  Tensor via_embeddings = enc.ForwardFromEmbeddings(tok, mask);
  Tensor via_tokens = enc.Forward(batch);
  for (int64_t i = 0; i < via_tokens.numel(); ++i) {
    EXPECT_NEAR(via_embeddings.at(i), via_tokens.at(i), 1e-4f);
  }
}

TEST(ImageEncoderTest, OutputShapeAndNormalization) {
  Rng rng(5);
  ImageEncoder enc(SmallConfig(), &rng);
  Tensor patches = Tensor::Randn({4, 6, 8}, &rng);
  Tensor e = enc.Forward(patches);
  EXPECT_EQ(e.shape(), (Shape{4, 12}));
  for (int64_t r = 0; r < 4; ++r) {
    double norm2 = 0;
    for (int64_t c = 0; c < 12; ++c) {
      norm2 += static_cast<double>(e.at(r * 12 + c)) * e.at(r * 12 + c);
    }
    EXPECT_NEAR(norm2, 1.0, 1e-4);
  }
}

TEST(ImageEncoderTest, FewerPatchesThanMaxAccepted) {
  Rng rng(6);
  ImageEncoder enc(SmallConfig(), &rng);
  Tensor patches = Tensor::Randn({2, 3, 8}, &rng);
  EXPECT_EQ(enc.Forward(patches).shape(), (Shape{2, 12}));
}

TEST(ClipModelTest, TemperaturePositiveAndLearnable) {
  Rng rng(7);
  ClipModel model(SmallConfig(), &rng);
  EXPECT_NEAR(model.Temperature().item(), 0.07f, 1e-4f);
  EXPECT_GT(model.Parameters().size(), 0u);
}

TEST(ClipModelTest, SimilarityMatrixIsCosine) {
  Tensor a = ops::L2Normalize(Tensor::FromVector({2, 2}, {1, 0, 0, 1}));
  Tensor b = ops::L2Normalize(Tensor::FromVector({2, 2}, {1, 0, 1, 1}));
  Tensor s = ClipModel::SimilarityMatrix(a, b);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_NEAR(s.at(0), 1.0f, 1e-5f);
  EXPECT_NEAR(s.at(1), 1.0f / std::sqrt(2.0f), 1e-5f);
  EXPECT_NEAR(s.at(2), 0.0f, 1e-5f);
}

TEST(ClipModelTest, ContrastiveLossLowerWhenAligned) {
  Rng rng(8);
  ClipModel model(SmallConfig(), &rng);
  // Perfectly aligned embeddings vs anti-aligned.
  Tensor aligned = ops::L2Normalize(Tensor::FromVector(
      {2, 2}, {1, 0, 0, 1}));
  Tensor shuffled = ops::L2Normalize(Tensor::FromVector(
      {2, 2}, {0, 1, 1, 0}));
  float good = model.ContrastiveLoss(aligned, aligned).item();
  float bad = model.ContrastiveLoss(aligned, shuffled).item();
  EXPECT_LT(good, bad);
}

TEST(ClipModelTest, ContrastiveLossWithExplicitTargets) {
  Rng rng(9);
  ClipModel model(SmallConfig(), &rng);
  Tensor t = ops::L2Normalize(Tensor::FromVector({2, 2}, {1, 0, 0, 1}));
  Tensor i = ops::L2Normalize(Tensor::FromVector({2, 2}, {0, 1, 1, 0}));
  // With swapped targets, the "shuffled" pairing becomes the correct one.
  float swapped = model.ContrastiveLoss(t, i, {1, 0}).item();
  float direct = model.ContrastiveLoss(t, i, {0, 1}).item();
  EXPECT_LT(swapped, direct);
}

TEST(ClipModelTest, ContrastiveLossRectangularBatch) {
  // CrossEM's confident-pair selection yields fewer texts than images;
  // the loss must handle Nt != Ni.
  Rng rng(13);
  ClipModel model(SmallConfig(), &rng);
  Tensor t = ops::L2Normalize(Tensor::Randn({3, 12}, &rng));
  Tensor i = ops::L2Normalize(Tensor::Randn({5, 12}, &rng));
  Tensor loss = model.ContrastiveLoss(t, i, {4, 0, 2});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(ClipModelTest, MatchingProbabilityRowsSumToOne) {
  Rng rng(10);
  ClipModel model(SmallConfig(), &rng);
  Tensor t = ops::L2Normalize(Tensor::Randn({3, 12}, &rng));
  Tensor i = ops::L2Normalize(Tensor::Randn({5, 12}, &rng));
  Tensor p = model.MatchingProbability(t, i);
  EXPECT_EQ(p.shape(), (Shape{3, 5}));
  EXPECT_FALSE(p.requires_grad());
  for (int64_t r = 0; r < 3; ++r) {
    double s = 0;
    for (int64_t c = 0; c < 5; ++c) s += p.at(r * 5 + c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(ClipModelTest, GradFlowsThroughBothTowers) {
  Rng rng(11);
  ClipModel model(SmallConfig(), &rng);
  Tensor text_emb = model.text().Forward(PaddedBatch(2, 12));
  Tensor patches = Tensor::Randn({2, 4, 8}, &rng);
  Tensor image_emb = model.image().Forward(patches);
  Tensor loss = model.ContrastiveLoss(text_emb, image_emb);
  loss.Backward();
  int64_t with_grad = 0;
  for (const Tensor& p : model.Parameters()) {
    if (p.grad().defined()) ++with_grad;
  }
  EXPECT_GT(with_grad, 10);
}

TEST(ClipModelTest, FrozenImageTowerReceivesNoGrad) {
  Rng rng(12);
  ClipModel model(SmallConfig(), &rng);
  model.image().SetRequiresGrad(false);
  Tensor text_emb = model.text().Forward(PaddedBatch(2, 12));
  Tensor image_emb = model.image().Forward(Tensor::Randn({2, 4, 8}, &rng));
  model.ContrastiveLoss(text_emb, image_emb).Backward();
  for (const auto& [name, p] : model.image().NamedParameters()) {
    EXPECT_FALSE(p.grad().defined()) << name;
  }
  bool text_has_grad = false;
  for (const auto& [name, p] : model.text().NamedParameters()) {
    if (p.grad().defined()) text_has_grad = true;
  }
  EXPECT_TRUE(text_has_grad);
}

}  // namespace
}  // namespace clip
}  // namespace crossem
