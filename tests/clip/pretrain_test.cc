// Integration test: pre-training the mini-CLIP on a synthetic caption
// corpus must (a) reduce the contrastive loss and (b) transfer zero-shot
// to held-out classes above chance. This validates the learnability
// premise every CrossEM experiment rests on.
#include "clip/pretrain.h"

#include "data/dataset.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace crossem {
namespace clip {
namespace {

class PretrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc = data::CubLikeConfig(0.6);
    dataset_ = new data::CrossModalDataset(data::BuildDataset(dc));

    ClipConfig cc;
    cc.vocab_size = dataset_->vocab.size();
    cc.text_context = 24;
    cc.model_dim = 32;
    cc.text_layers = 2;
    cc.text_heads = 4;
    cc.image_layers = 2;
    cc.image_heads = 4;
    cc.patch_dim = dataset_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 24;
    Rng rng(17);
    model_ = new ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&dataset_->vocab, cc.text_context);

    PretrainConfig pc;
    pc.epochs = 18;
    pc.batches_per_epoch = 16;
    pc.batch_size = 12;
    // Name-rich corpus: this test checks that name->image alignment
    // transfers, so every caption names its entity.
    pc.name_mention_prob = 1.0f;
    std::vector<int64_t> all_classes(
        static_cast<size_t>(dataset_->world->num_classes()));
    for (size_t i = 0; i < all_classes.size(); ++i) {
      all_classes[i] = static_cast<int64_t>(i);
    }
    auto stats = PretrainClip(model_, *dataset_->world, all_classes,
                              *tokenizer_, pc);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    stats_ = new PretrainStats(stats.MoveValue());
  }

  static void TearDownTestSuite() {
    delete stats_;
    delete tokenizer_;
    delete model_;
    delete dataset_;
  }

  static data::CrossModalDataset* dataset_;
  static ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static PretrainStats* stats_;
};

data::CrossModalDataset* PretrainFixture::dataset_ = nullptr;
ClipModel* PretrainFixture::model_ = nullptr;
text::Tokenizer* PretrainFixture::tokenizer_ = nullptr;
PretrainStats* PretrainFixture::stats_ = nullptr;

TEST_F(PretrainFixture, LossDecreases) {
  ASSERT_GE(stats_->epoch_loss.size(), 2u);
  EXPECT_LT(stats_->final_loss, stats_->epoch_loss.front() * 0.8f);
}

TEST_F(PretrainFixture, ZeroShotTransferAboveChance) {
  NoGradGuard guard;
  // Rank held-out-class images for each held-out-class caption prompt.
  const auto& test_classes = dataset_->test_classes;
  auto image_idx = dataset_->TestImageIndices();
  ASSERT_FALSE(test_classes.empty());
  ASSERT_FALSE(image_idx.empty());

  std::vector<std::vector<int64_t>> prompts;
  for (int64_t c : test_classes) {
    prompts.push_back(tokenizer_->EncodePadded(
        "a photo of " + dataset_->world->ClassName(c)));
  }
  Tensor text_emb = model_->text().Forward(prompts);
  Tensor image_emb =
      model_->image().Forward(dataset_->StackImages(image_idx));
  Tensor scores = ClipModel::SimilarityMatrix(text_emb, image_emb);

  std::vector<int64_t> image_class;
  for (int64_t i : image_idx) {
    image_class.push_back(dataset_->images[static_cast<size_t>(i)].true_class);
  }
  auto metrics =
      eval::ComputeRankingMetricsByClass(scores, test_classes, image_class);

  // Chance H@1 is (images per class) / (total test images) ~= 14%.
  const double chance =
      100.0 / static_cast<double>(test_classes.size());
  EXPECT_GT(metrics.hits_at_1, chance * 1.5)
      << "zero-shot H@1 " << metrics.hits_at_1 << " vs chance " << chance;
  EXPECT_GT(metrics.mrr, 1.5 / static_cast<double>(test_classes.size()));
}

TEST_F(PretrainFixture, RejectsEmptyClassList) {
  PretrainConfig pc;
  auto r = PretrainClip(model_, *dataset_->world, {}, *tokenizer_, pc);
  EXPECT_FALSE(r.ok());
}

TEST_F(PretrainFixture, RejectsOutOfRangeClass) {
  PretrainConfig pc;
  auto r = PretrainClip(model_, *dataset_->world, {9999}, *tokenizer_, pc);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace clip
}  // namespace crossem
