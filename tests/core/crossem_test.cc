// Integration tests for the CrossEM matcher: fitting mechanics, stats
// telemetry, matching output, and the CrossEM+ efficiency property.
#include "core/crossem.h"

#include "clip/pretrain.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"

namespace crossem {
namespace core {
namespace {

class CrossEmFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new data::CrossModalDataset(
        data::BuildDataset(data::CubLikeConfig(0.5)));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 48;
    cc.model_dim = 24;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 16;
    Rng rng(21);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);

    clip::PretrainConfig pc;
    pc.epochs = 6;  // light: enough for non-degenerate embeddings
    pc.batches_per_epoch = 10;
    pc.batch_size = 10;
    std::vector<int64_t> all(static_cast<size_t>(ds_->world->num_classes()));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
    ASSERT_TRUE(
        clip::PretrainClip(model_, *ds_->world, all, *tokenizer_, pc).ok());
    snapshot_ = new std::vector<Tensor>(model_->SnapshotParameters());

    for (int64_t c : ds_->test_classes) {
      vertices_.push_back(ds_->entities[static_cast<size_t>(c)]);
    }
    images_ = new Tensor(ds_->StackImages(ds_->TestImageIndices()));
  }

  static void TearDownTestSuite() {
    delete snapshot_;
    delete images_;
    delete tokenizer_;
    delete model_;
    delete ds_;
    vertices_.clear();
  }

  void SetUp() override { model_->RestoreParameters(*snapshot_); }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static std::vector<Tensor>* snapshot_;
  static Tensor* images_;
  static std::vector<graph::VertexId> vertices_;
};

data::CrossModalDataset* CrossEmFixture::ds_ = nullptr;
clip::ClipModel* CrossEmFixture::model_ = nullptr;
text::Tokenizer* CrossEmFixture::tokenizer_ = nullptr;
std::vector<Tensor>* CrossEmFixture::snapshot_ = nullptr;
Tensor* CrossEmFixture::images_ = nullptr;
std::vector<graph::VertexId> CrossEmFixture::vertices_;

TEST_F(CrossEmFixture, EncodeVerticesShapes) {
  for (PromptMode mode :
       {PromptMode::kBaseline, PromptMode::kHard, PromptMode::kSoft}) {
    CrossEmOptions opt;
    opt.prompt_mode = mode;
    CrossEm m(model_, &ds_->graph, tokenizer_, opt);
    Tensor e = m.EncodeVertices(vertices_);
    EXPECT_EQ(e.size(0), static_cast<int64_t>(vertices_.size()));
    EXPECT_EQ(e.size(1), model_->config().embed_dim);
  }
}

TEST_F(CrossEmFixture, ScoreMatrixShape) {
  CrossEmOptions opt;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  Tensor s = m.ScoreMatrix(vertices_, *images_);
  EXPECT_EQ(s.size(0), static_cast<int64_t>(vertices_.size()));
  EXPECT_EQ(s.size(1), images_->size(0));
}

TEST_F(CrossEmFixture, DiscreteModesDoNotTrain) {
  for (PromptMode mode : {PromptMode::kBaseline, PromptMode::kHard}) {
    CrossEmOptions opt;
    opt.prompt_mode = mode;
    opt.epochs = 3;
    CrossEm m(model_, &ds_->graph, tokenizer_, opt);
    auto stats = m.Fit(vertices_, *images_);
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats.value().epochs.empty());
    EXPECT_EQ(stats.value().AvgEpochSeconds(), 0.0);
  }
}

TEST_F(CrossEmFixture, SoftFitRunsAndReportsStats) {
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  opt.epochs = 2;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto stats = m.Fit(vertices_, *images_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().epochs.size(), 2u);
  for (const auto& e : stats.value().epochs) {
    EXPECT_GT(e.num_batches, 0);
    EXPECT_GT(e.seconds, 0.0);
    EXPECT_GT(e.peak_bytes, 0);
  }
  EXPECT_GT(stats.value().total_seconds, 0.0);
}

TEST_F(CrossEmFixture, FitKeepsFrozenTowersIntact) {
  std::vector<float> image_param_before =
      model_->image().Parameters()[0].ToVector();
  float temp_before = model_->Temperature().item();
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  opt.epochs = 1;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  ASSERT_TRUE(m.Fit(vertices_, *images_).ok());
  EXPECT_EQ(model_->image().Parameters()[0].ToVector(), image_param_before);
  EXPECT_FLOAT_EQ(model_->Temperature().item(), temp_before);
  // requires_grad restored for later users.
  EXPECT_TRUE(model_->image().Parameters()[0].requires_grad());
  EXPECT_TRUE(model_->text().Parameters()[0].requires_grad());
}

TEST_F(CrossEmFixture, FitWithFrozenTextDoesNotChangeTextTower) {
  std::vector<float> text_param_before =
      model_->text().Parameters()[0].ToVector();
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  opt.epochs = 1;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  ASSERT_TRUE(m.Fit(vertices_, *images_).ok());
  EXPECT_EQ(model_->text().Parameters()[0].ToVector(), text_param_before);
}

TEST_F(CrossEmFixture, TuneTextEncoderOptionChangesTextTower) {
  std::vector<float> text_param_before =
      model_->text().Parameters()[0].ToVector();
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  opt.epochs = 1;
  opt.tune_text_encoder = true;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  ASSERT_TRUE(m.Fit(vertices_, *images_).ok());
  EXPECT_NE(model_->text().Parameters()[0].ToVector(), text_param_before);
}

TEST_F(CrossEmFixture, CrossEmPlusFitRuns) {
  CrossEmOptions opt = CrossEmPlusOptions();
  opt.epochs = 2;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto stats = m.Fit(vertices_, *images_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().epochs.size(), 2u);
}

TEST_F(CrossEmFixture, CrossEmPlusTrainsFewerPairsThanFullSplit) {
  // The full split processes the entire candidate set |V| x |I| per
  // epoch; MBG prunes and localizes, so CrossEM+ must touch fewer
  // candidate pairs (Sec. IV-A).
  CrossEmOptions plain;
  plain.prompt_mode = PromptMode::kSoft;
  plain.epochs = 1;
  CrossEm m1(model_, &ds_->graph, tokenizer_, plain);
  auto s1 = m1.Fit(vertices_, *images_);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1.value().epochs[0].num_pairs,
            static_cast<int64_t>(vertices_.size()) * images_->size(0));

  model_->RestoreParameters(*snapshot_);
  CrossEmOptions plus = CrossEmPlusOptions();
  plus.epochs = 1;
  // Disable negative-sampling padding so the comparison isolates MBG.
  plus.use_negative_sampling = false;
  CrossEm m2(model_, &ds_->graph, tokenizer_, plus);
  auto s2 = m2.Fit(vertices_, *images_);
  ASSERT_TRUE(s2.ok());

  EXPECT_LT(s2.value().epochs[0].num_pairs, s1.value().epochs[0].num_pairs);
}

TEST_F(CrossEmFixture, FindMatchesReturnsTopImagePerVertex) {
  CrossEmOptions opt;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto pairs = m.FindMatches(vertices_, *images_);
  EXPECT_EQ(pairs.size(), vertices_.size());
  Tensor prob = model_->MatchingProbability(m.EncodeVertices(vertices_),
                                            m.EncodeImages(*images_));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].vertex, vertices_[i]);
    EXPECT_GE(pairs[i].image, 0);
    EXPECT_LT(pairs[i].image, images_->size(0));
    // Score equals the row max of the probability matrix.
    float row_max = 0;
    for (int64_t c = 0; c < prob.size(1); ++c) {
      row_max = std::max(row_max,
                         prob.at(static_cast<int64_t>(i) * prob.size(1) + c));
    }
    EXPECT_NEAR(pairs[i].score, row_max, 1e-5f);
  }
}

TEST_F(CrossEmFixture, FindMutualMatchesIsSubsetOfFindMatches) {
  CrossEmOptions opt;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto all = m.FindMatches(vertices_, *images_);
  auto mutual = m.FindMutualMatches(vertices_, *images_);
  EXPECT_LE(mutual.size(), all.size());
  // Every mutual pair appears in the full match set with the same image.
  for (const auto& mp : mutual) {
    bool found = false;
    for (const auto& ap : all) {
      if (ap.vertex == mp.vertex) {
        EXPECT_EQ(ap.image, mp.image);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  // No image appears twice among mutual matches (mutuality is 1:1).
  std::set<int64_t> images_seen;
  for (const auto& mp : mutual) {
    EXPECT_TRUE(images_seen.insert(mp.image).second);
  }
}

TEST_F(CrossEmFixture, FindMatchesThresholdFilters) {
  CrossEmOptions opt;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto all_pairs = m.FindMatches(vertices_, *images_, 0.0f);
  auto none = m.FindMatches(vertices_, *images_, 1.1f);
  EXPECT_EQ(all_pairs.size(), vertices_.size());
  EXPECT_TRUE(none.empty());
}

TEST_F(CrossEmFixture, FitRejectsBadInputs) {
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  EXPECT_FALSE(m.Fit({}, *images_).ok());
  EXPECT_FALSE(m.Fit(vertices_, Tensor()).ok());
  EXPECT_FALSE(m.Fit({99999}, *images_).ok());
}

TEST_F(CrossEmFixture, SoftTuningImprovesPseudoObjective) {
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  opt.epochs = 4;
  opt.learning_rate = 5e-3f;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto stats = m.Fit(vertices_, *images_);
  ASSERT_TRUE(stats.ok());
  // The tuning objective itself must improve.
  EXPECT_LT(stats.value().epochs.back().loss,
            stats.value().epochs.front().loss);
}

}  // namespace
}  // namespace core
}  // namespace crossem
