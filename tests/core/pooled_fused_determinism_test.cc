// End-to-end determinism of the pooled + fused training hot path: a small
// transformer training run must produce bitwise-identical parameters — and
// byte-identical checkpoints — whether it runs with the tensor pool on or
// off, with fused or composed-reference kernels, on 1 thread or 8.
// This is the guarantee that lets CROSSEM_TENSOR_POOL / CROSSEM_FUSED_KERNELS
// be flipped on a production run without changing its numbers.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "nn/attention.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/random.h"

namespace crossem {
namespace {

struct RunResult {
  std::vector<std::vector<float>> params;  // post-training values
  std::string checkpoint_bytes;            // serialized checkpoint file
};

std::string SlurpAndRemove(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  return buf.str();
}

/// One complete training run under the given configuration. Every source
/// of randomness is re-seeded inside, so any two calls may only differ
/// through the pool / fused / threading configuration under test.
RunResult TrainSmallTransformer(bool fused, bool pool, int threads,
                                const std::string& tag) {
  internal::TensorPool::SetEnabled(pool);
  ops::SetFusedKernels(fused ? ops::FusedKernels::kFused
                             : ops::FusedKernels::kReference);
  SetNumThreads(threads);

  Rng init_rng(21);
  nn::TransformerEncoder enc(/*num_layers=*/1, /*model_dim=*/16,
                             /*num_heads=*/2, /*mlp_dim=*/32, &init_rng);
  Rng data_rng(22);
  Tensor x = Tensor::Randn({2, 8, 16}, &data_rng);
  Tensor mask = Tensor::Ones({2, 8});
  float* mp = mask.data();
  mp[8 + 6] = 0.0f;  // batch 1 pads its last two positions
  mp[8 + 7] = 0.0f;

  nn::Adam opt(enc.Parameters(), /*lr=*/1e-2f);
  for (int step = 0; step < 5; ++step) {
    opt.ZeroGrad();
    Tensor y = enc.Forward(x, mask);
    ops::Sum(ops::Mul(y, y)).Backward();
    opt.Step();
  }

  RunResult result;
  for (const Tensor& p : enc.Parameters()) {
    result.params.push_back(p.ToVector());
  }
  const std::string path =
      ::testing::TempDir() + "/pooled_fused_ckpt_" + tag + ".bin";
  EXPECT_TRUE(nn::SaveCheckpoint(enc, path).ok());
  result.checkpoint_bytes = SlurpAndRemove(path);

  // Restore process defaults for whoever runs next.
  SetNumThreads(0);
  internal::TensorPool::SetEnabled(true);
  ops::SetFusedKernels(ops::FusedKernels::kFused);
  return result;
}

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b,
                         const char* what) {
  ASSERT_EQ(a.params.size(), b.params.size()) << what;
  for (size_t p = 0; p < a.params.size(); ++p) {
    ASSERT_EQ(a.params[p].size(), b.params[p].size()) << what;
    for (size_t i = 0; i < a.params[p].size(); ++i) {
      ASSERT_EQ(a.params[p][i], b.params[p][i])
          << what << ": param " << p << " diverges at " << i;
    }
  }
  ASSERT_FALSE(a.checkpoint_bytes.empty()) << what;
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes)
      << what << ": checkpoint files differ";
}

TEST(PooledFusedDeterminismTest, TrainingRunBitwiseStableAcrossConfigs) {
  const RunResult base =
      TrainSmallTransformer(/*fused=*/true, /*pool=*/true, /*threads=*/1,
                            "fused_pool_1t");
  const RunResult fused_8t =
      TrainSmallTransformer(true, true, 8, "fused_pool_8t");
  const RunResult reference_1t =
      TrainSmallTransformer(false, false, 1, "ref_nopool_1t");
  const RunResult reference_8t =
      TrainSmallTransformer(false, false, 8, "ref_nopool_8t");

  ExpectIdenticalRuns(base, fused_8t, "fused+pool 1T vs 8T");
  ExpectIdenticalRuns(base, reference_1t, "fused+pool vs reference+nopool 1T");
  ExpectIdenticalRuns(base, reference_8t, "fused+pool 1T vs reference 8T");
}

}  // namespace
}  // namespace crossem
