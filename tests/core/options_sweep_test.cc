// Property-style sweep: every combination of CrossEM+ optimization
// toggles (and both structural backbones) must train without error and
// produce a well-formed score matrix.
#include "clip/pretrain.h"
#include "core/crossem.h"
#include "data/dataset.h"
#include "gtest/gtest.h"

namespace crossem {
namespace core {
namespace {

struct SweepCase {
  bool mbg;
  bool ns;
  bool opc;
  SoftBackbone backbone;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string s;
  s += info.param.mbg ? "Mbg" : "NoMbg";
  s += info.param.ns ? "Ns" : "NoNs";
  s += info.param.opc ? "Opc" : "NoOpc";
  s += info.param.backbone == SoftBackbone::kGnn ? "Gnn" : "Sage";
  return s;
}

class OptionsSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static void SetUpTestSuite() {
    ds_ = new data::CrossModalDataset(
        data::BuildDataset(data::SunLikeConfig(0.5)));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 48;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(41);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);
    for (int64_t c : ds_->test_classes) {
      vertices_.push_back(ds_->entities[static_cast<size_t>(c)]);
    }
    images_ = new Tensor(ds_->StackImages(ds_->TestImageIndices()));
    snapshot_ = new std::vector<Tensor>(model_->SnapshotParameters());
  }

  static void TearDownTestSuite() {
    delete snapshot_;
    delete images_;
    delete tokenizer_;
    delete model_;
    delete ds_;
    vertices_.clear();
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static Tensor* images_;
  static std::vector<Tensor>* snapshot_;
  static std::vector<graph::VertexId> vertices_;
};

data::CrossModalDataset* OptionsSweepTest::ds_ = nullptr;
clip::ClipModel* OptionsSweepTest::model_ = nullptr;
text::Tokenizer* OptionsSweepTest::tokenizer_ = nullptr;
Tensor* OptionsSweepTest::images_ = nullptr;
std::vector<Tensor>* OptionsSweepTest::snapshot_ = nullptr;
std::vector<graph::VertexId> OptionsSweepTest::vertices_;

TEST_P(OptionsSweepTest, FitsAndScores) {
  const SweepCase& c = GetParam();
  model_->RestoreParameters(*snapshot_);
  CrossEmOptions opt;
  opt.prompt_mode = PromptMode::kSoft;
  opt.epochs = 1;
  opt.use_mini_batch_generation = c.mbg;
  opt.use_negative_sampling = c.ns;
  opt.use_orthogonal_constraint = c.opc;
  opt.soft.backbone = c.backbone;
  CrossEm matcher(model_, &ds_->graph, tokenizer_, opt);
  auto stats = matcher.Fit(vertices_, *images_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().epochs.size(), 1u);
  EXPECT_GT(stats.value().epochs[0].num_batches, 0);

  Tensor scores = matcher.ScoreMatrix(vertices_, *images_);
  EXPECT_EQ(scores.size(0), static_cast<int64_t>(vertices_.size()));
  EXPECT_EQ(scores.size(1), images_->size(0));
  for (int64_t i = 0; i < scores.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(scores.at(i)));
    EXPECT_GE(scores.at(i), -1.001f);  // cosine range
    EXPECT_LE(scores.at(i), 1.001f);
  }
}

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (bool mbg : {false, true}) {
    for (bool ns : {false, true}) {
      for (bool opc : {false, true}) {
        // Exercise GraphSAGE on a representative subset to bound runtime.
        cases.push_back({mbg, ns, opc, SoftBackbone::kGnn});
        if (mbg && ns && opc) {
          cases.push_back({mbg, ns, opc, SoftBackbone::kGraphSage});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllToggleCombos, OptionsSweepTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace core
}  // namespace crossem
