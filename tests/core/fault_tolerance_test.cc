// Fault-tolerance drills for the CrossEM training loop: kill-and-resume
// checkpointing (bit-for-bit), the non-finite batch guard with rollback
// and retry, degenerate matching inputs, and checkpoint I/O failures
// injected mid-Fit.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "clip/pretrain.h"
#include "core/crossem.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "util/fault_injection.h"
#include "util/parallel.h"

namespace crossem {
namespace core {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class FaultToleranceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new data::CrossModalDataset(
        data::BuildDataset(data::CubLikeConfig(0.5)));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 48;
    cc.model_dim = 24;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 16;
    Rng rng(21);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);

    clip::PretrainConfig pc;
    pc.epochs = 4;
    pc.batches_per_epoch = 8;
    pc.batch_size = 10;
    std::vector<int64_t> all(static_cast<size_t>(ds_->world->num_classes()));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
    ASSERT_TRUE(
        clip::PretrainClip(model_, *ds_->world, all, *tokenizer_, pc).ok());
    snapshot_ = new std::vector<Tensor>(model_->SnapshotParameters());

    for (int64_t c : ds_->test_classes) {
      vertices_.push_back(ds_->entities[static_cast<size_t>(c)]);
    }
    images_ = new Tensor(ds_->StackImages(ds_->TestImageIndices()));
  }

  static void TearDownTestSuite() {
    delete snapshot_;
    delete images_;
    delete tokenizer_;
    delete model_;
    delete ds_;
    vertices_.clear();
  }

  void SetUp() override {
    fault::Clear();
    model_->RestoreParameters(*snapshot_);
  }
  void TearDown() override {
    fault::Clear();
    SetNumThreads(0);
  }

  static CrossEmOptions SoftOptions(int64_t epochs) {
    CrossEmOptions opt;
    opt.prompt_mode = PromptMode::kSoft;
    opt.epochs = epochs;
    return opt;
  }

  /// Snapshot of the trainable (soft prompt) parameters for bitwise
  /// comparisons.
  static std::vector<std::vector<float>> PromptValues(CrossEm* m) {
    std::vector<std::vector<float>> out;
    for (const Tensor& p : m->soft_prompt()->Parameters()) {
      out.push_back(p.ToVector());
    }
    return out;
  }

  /// A copy of the fixture images with image `index` (or all images when
  /// index < 0) poisoned with NaN patches. NaN propagates through the
  /// frozen image tower into the batch loss, so every mini-batch whose
  /// image chunk contains a poisoned image trips the non-finite guard.
  static Tensor PoisonedImages(int64_t index) {
    Tensor poisoned = images_->Clone();
    const int64_t per_image = poisoned.size(1) * poisoned.size(2);
    float* d = poisoned.data();
    const int64_t begin = index < 0 ? 0 : index * per_image;
    const int64_t end = index < 0 ? poisoned.numel() : begin + per_image;
    for (int64_t i = begin; i < end; ++i) d[i] = NAN;
    return poisoned;
  }

  /// The acceptance drill: a 4-epoch reference run, a run killed after
  /// epoch 2 (simulated by epochs=2 with checkpointing on), and a fresh
  /// process resuming from the checkpoint must agree bitwise — per-epoch
  /// losses and final parameters.
  void RunKillResumeDrill(int threads, const char* ckpt_name) {
    SetNumThreads(threads);
    const std::string ckpt = TempPath(ckpt_name);
    std::remove(ckpt.c_str());

    // Uninterrupted reference.
    model_->RestoreParameters(*snapshot_);
    CrossEm ref(model_, &ds_->graph, tokenizer_, SoftOptions(4));
    auto full = ref.Fit(vertices_, *images_);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_EQ(full.value().epochs.size(), 4u);
    const std::vector<std::vector<float>> ref_params = PromptValues(&ref);

    // "Killed" after two epochs: same options plus checkpointing.
    model_->RestoreParameters(*snapshot_);
    CrossEmOptions part = SoftOptions(2);
    part.checkpoint_path = ckpt;
    CrossEm first(model_, &ds_->graph, tokenizer_, part);
    auto head = first.Fit(vertices_, *images_);
    ASSERT_TRUE(head.ok()) << head.status().ToString();
    EXPECT_EQ(head.value().epochs[0].loss, full.value().epochs[0].loss);
    EXPECT_EQ(head.value().epochs[1].loss, full.value().epochs[1].loss);
    ASSERT_TRUE(io::FileExists(ckpt));

    // A fresh matcher in a "restarted process" resumes from the
    // checkpoint and finishes epochs 2..3.
    model_->RestoreParameters(*snapshot_);
    CrossEmOptions rest = SoftOptions(4);
    rest.checkpoint_path = ckpt;
    rest.resume = true;
    CrossEm second(model_, &ds_->graph, tokenizer_, rest);
    auto tail = second.Fit(vertices_, *images_);
    ASSERT_TRUE(tail.ok()) << tail.status().ToString();
    ASSERT_EQ(tail.value().epochs.size(), 2u);
    EXPECT_EQ(tail.value().epochs[0].loss, full.value().epochs[2].loss);
    EXPECT_EQ(tail.value().epochs[1].loss, full.value().epochs[3].loss);
    EXPECT_EQ(PromptValues(&second), ref_params);

    EXPECT_FALSE(io::FileExists(ckpt + ".tmp"));
    std::remove(ckpt.c_str());
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static std::vector<Tensor>* snapshot_;
  static Tensor* images_;
  static std::vector<graph::VertexId> vertices_;
};

data::CrossModalDataset* FaultToleranceFixture::ds_ = nullptr;
clip::ClipModel* FaultToleranceFixture::model_ = nullptr;
text::Tokenizer* FaultToleranceFixture::tokenizer_ = nullptr;
std::vector<Tensor>* FaultToleranceFixture::snapshot_ = nullptr;
Tensor* FaultToleranceFixture::images_ = nullptr;
std::vector<graph::VertexId> FaultToleranceFixture::vertices_;

TEST_F(FaultToleranceFixture, KillAndResumeIsBitwiseIdenticalOneThread) {
  RunKillResumeDrill(1, "resume_1thread.ckpt");
}

TEST_F(FaultToleranceFixture, KillAndResumeIsBitwiseIdenticalEightThreads) {
  RunKillResumeDrill(8, "resume_8threads.ckpt");
}

TEST_F(FaultToleranceFixture, ResumeStartsFreshWhenCheckpointMissing) {
  const std::string ckpt = TempPath("resume_missing.ckpt");
  std::remove(ckpt.c_str());
  CrossEmOptions opt = SoftOptions(1);
  opt.checkpoint_path = ckpt;
  opt.resume = true;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto stats = m.Fit(vertices_, *images_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().epochs.size(), 1u);
  EXPECT_TRUE(io::FileExists(ckpt));
  std::remove(ckpt.c_str());
}

TEST_F(FaultToleranceFixture, FitValidatesFaultToleranceOptions) {
  struct Case {
    const char* name;
    void (*tweak)(CrossEmOptions*);
  };
  const Case cases[] = {
      {"resume without path", [](CrossEmOptions* o) { o->resume = true; }},
      {"zero cadence",
       [](CrossEmOptions* o) { o->checkpoint_every_epochs = 0; }},
      {"fraction > 1",
       [](CrossEmOptions* o) { o->max_bad_batch_fraction = 1.5f; }},
      {"negative retries",
       [](CrossEmOptions* o) { o->max_epoch_retries = -1; }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    CrossEmOptions opt = SoftOptions(1);
    c.tweak(&opt);
    CrossEm m(model_, &ds_->graph, tokenizer_, opt);
    auto stats = m.Fit(vertices_, *images_);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(FaultToleranceFixture, NonFiniteBatchesAreSkippedAndCounted) {
  // One poisoned image out of many: only the mini-batches holding it go
  // bad, so training completes while the guard counts the skips.
  ASSERT_GT(images_->size(0), 16) << "need > 1 image chunk for this drill";
  CrossEmOptions opt = SoftOptions(1);
  opt.max_bad_batch_fraction = 1.0f;  // never roll back here
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  auto stats = m.Fit(vertices_, PoisonedImages(0));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const EpochStats& es = stats.value().epochs.at(0);
  EXPECT_GT(es.bad_batches, 0);
  EXPECT_GT(es.num_batches, 0);
  EXPECT_EQ(es.retries, 0);
  EXPECT_TRUE(std::isfinite(es.loss));
}

TEST_F(FaultToleranceFixture, DivergedEpochRollsBackAndExhaustsRetries) {
  // Every image poisoned: every batch is bad, every attempt diverges.
  CrossEmOptions opt = SoftOptions(1);
  opt.max_bad_batch_fraction = 0.0f;  // any bad batch triggers rollback
  opt.max_epoch_retries = 1;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  const std::vector<std::vector<float>> before = PromptValues(&m);
  auto stats = m.Fit(vertices_, PoisonedImages(-1));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  EXPECT_NE(stats.status().ToString().find("diverged"), std::string::npos)
      << stats.status().ToString();
  EXPECT_NE(stats.status().ToString().find("1 retries"), std::string::npos)
      << stats.status().ToString();
  // The rollback ran before the error surfaced: nothing of the failed
  // attempts survives in the parameters, and the model is back in
  // inference mode for its other users.
  EXPECT_EQ(PromptValues(&m), before);
  EXPECT_TRUE(model_->text().Parameters()[0].requires_grad());
  EXPECT_TRUE(model_->image().Parameters()[0].requires_grad());
}

TEST_F(FaultToleranceFixture, DegenerateMatchingInputsYieldNoMatches) {
  CrossEmOptions opt;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  const Tensor zero_rows =
      Tensor::Zeros({0, images_->size(1), images_->size(2)});
  EXPECT_TRUE(m.FindMatches({}, *images_).empty());
  EXPECT_TRUE(m.FindMatches(vertices_, Tensor()).empty());
  EXPECT_TRUE(m.FindMatches(vertices_, zero_rows).empty());
  EXPECT_TRUE(m.FindMutualMatches({}, *images_).empty());
  EXPECT_TRUE(m.FindMutualMatches(vertices_, Tensor()).empty());
  EXPECT_TRUE(m.FindMutualMatches(vertices_, zero_rows).empty());
}

TEST_F(FaultToleranceFixture, CheckpointSaveFaultFailsFitCleanly) {
  const std::string ckpt = TempPath("fit_ckpt_fault.ckpt");
  std::remove(ckpt.c_str());
  CrossEmOptions opt = SoftOptions(1);
  opt.checkpoint_path = ckpt;
  CrossEm m(model_, &ds_->graph, tokenizer_, opt);
  fault::FailOn(fault::FileOp::kWrite, 1);
  auto stats = m.Fit(vertices_, *images_);
  fault::Clear();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIOError);
  EXPECT_NE(stats.status().ToString().find(ckpt), std::string::npos)
      << stats.status().ToString();
  EXPECT_FALSE(io::FileExists(ckpt + ".tmp"));
  EXPECT_FALSE(io::FileExists(ckpt));
  // The failed save must not leave the model stuck in training mode.
  EXPECT_TRUE(model_->text().Parameters()[0].requires_grad());

  // With the fault gone the same Fit checkpoints fine.
  model_->RestoreParameters(*snapshot_);
  CrossEm retry(model_, &ds_->graph, tokenizer_, opt);
  ASSERT_TRUE(retry.Fit(vertices_, *images_).ok());
  EXPECT_TRUE(io::FileExists(ckpt));
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace core
}  // namespace crossem
