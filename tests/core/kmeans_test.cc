#include "core/kmeans.h"

#include <set>

#include "gtest/gtest.h"

namespace crossem {
namespace core {
namespace {

TEST(KMeansTest, SeparatesWellSeparatedClusters) {
  // Two tight blobs far apart.
  std::vector<float> data;
  Rng noise(1);
  for (int i = 0; i < 10; ++i) {
    data.push_back(static_cast<float>(noise.Normal(0.0, 0.1)));
    data.push_back(static_cast<float>(noise.Normal(0.0, 0.1)));
  }
  for (int i = 0; i < 10; ++i) {
    data.push_back(static_cast<float>(noise.Normal(10.0, 0.1)));
    data.push_back(static_cast<float>(noise.Normal(10.0, 0.1)));
  }
  Tensor points = Tensor::FromVector({20, 2}, data);
  Rng rng(2);
  KMeansResult r = KMeans(points, 2, &rng);
  // All first-10 in one cluster, all last-10 in the other.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(r.assignments[i], r.assignments[0]);
  for (int i = 11; i < 20; ++i) {
    EXPECT_EQ(r.assignments[static_cast<size_t>(i)], r.assignments[10]);
  }
  EXPECT_NE(r.assignments[0], r.assignments[10]);
}

TEST(KMeansTest, KClampedToPointCount) {
  Tensor points = Tensor::FromVector({2, 1}, {0.0f, 1.0f});
  Rng rng(3);
  KMeansResult r = KMeans(points, 5, &rng);
  EXPECT_EQ(r.centroids.size(0), 2);
  EXPECT_NE(r.assignments[0], r.assignments[1]);
}

TEST(KMeansTest, SinglePoint) {
  Tensor points = Tensor::FromVector({1, 3}, {1, 2, 3});
  Rng rng(4);
  KMeansResult r = KMeans(points, 3, &rng);
  EXPECT_EQ(r.assignments, (std::vector<int64_t>{0}));
}

TEST(KMeansTest, IdenticalPointsOneCluster) {
  Tensor points = Tensor::FromVector({4, 2}, {1, 1, 1, 1, 1, 1, 1, 1});
  Rng rng(5);
  KMeansResult r = KMeans(points, 2, &rng);
  // All assignments equal (ties broken consistently).
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(r.assignments[i], r.assignments[0]);
}

TEST(KMeansTest, AssignmentsInRange) {
  Rng data_rng(6);
  Tensor points = Tensor::Randn({30, 4}, &data_rng);
  Rng rng(7);
  KMeansResult r = KMeans(points, 5, &rng);
  EXPECT_EQ(r.assignments.size(), 30u);
  for (int64_t a : r.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
  EXPECT_GT(r.iterations, 0);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng data_rng(8);
  Tensor points = Tensor::Randn({30, 4}, &data_rng);
  Rng rng1(9), rng2(9);
  KMeansResult a = KMeans(points, 4, &rng1);
  KMeansResult b = KMeans(points, 4, &rng2);
  EXPECT_EQ(a.assignments, b.assignments);
}

}  // namespace
}  // namespace core
}  // namespace crossem
