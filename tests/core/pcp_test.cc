#include "core/pcp.h"

#include <set>

#include "core/negative_sampling.h"
#include "data/dataset.h"
#include "gtest/gtest.h"

namespace crossem {
namespace core {
namespace {

/// Shared fixture: a small dataset and an (untrained) model — partition
/// invariants must hold regardless of embedding quality.
class PcpFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc = data::CubLikeConfig(0.4);
    ds_ = new data::CrossModalDataset(data::BuildDataset(dc));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(5);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);
    images_ = new Tensor(ds_->StackImages(ds_->TestImageIndices()));
    for (int64_t c : ds_->test_classes) {
      vertices_.push_back(ds_->entities[static_cast<size_t>(c)]);
    }
  }

  static void TearDownTestSuite() {
    delete images_;
    delete tokenizer_;
    delete model_;
    delete ds_;
    vertices_.clear();
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static Tensor* images_;
  static std::vector<graph::VertexId> vertices_;
};

data::CrossModalDataset* PcpFixture::ds_ = nullptr;
clip::ClipModel* PcpFixture::model_ = nullptr;
text::Tokenizer* PcpFixture::tokenizer_ = nullptr;
Tensor* PcpFixture::images_ = nullptr;
std::vector<graph::VertexId> PcpFixture::vertices_;

TEST_F(PcpFixture, ProximityShapeAndFiniteness) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Tensor prox = gen.ComputeProximity(vertices_, *images_);
  EXPECT_EQ(prox.size(0), static_cast<int64_t>(vertices_.size()));
  EXPECT_EQ(prox.size(1), images_->size(0));
  for (int64_t i = 0; i < prox.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(prox.at(i)));
  }
}

TEST_F(PcpFixture, ProximityDoesNotTrackGradients) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Tensor prox = gen.ComputeProximity(vertices_, *images_);
  EXPECT_FALSE(prox.requires_grad());
}

TEST_F(PcpFixture, PartitionsCoverAllVertices) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Rng rng(7);
  auto out = gen.Generate(vertices_, *images_, &rng);
  ASSERT_TRUE(out.ok());
  std::set<graph::VertexId> seen;
  for (const MiniBatch& mb : out.value().partitions) {
    EXPECT_FALSE(mb.vertices.empty());
    EXPECT_FALSE(mb.image_indices.empty());
    for (graph::VertexId v : mb.vertices) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), vertices_.size());
}

TEST_F(PcpFixture, PartitionImagesAreValidAndDeduplicated) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Rng rng(8);
  auto out = gen.Generate(vertices_, *images_, &rng);
  ASSERT_TRUE(out.ok());
  for (const MiniBatch& mb : out.value().partitions) {
    std::set<int64_t> uniq(mb.image_indices.begin(), mb.image_indices.end());
    EXPECT_EQ(uniq.size(), mb.image_indices.size());
    for (int64_t img : mb.image_indices) {
      EXPECT_GE(img, 0);
      EXPECT_LT(img, images_->size(0));
    }
  }
}

TEST_F(PcpFixture, PruningReducesCandidatePairs) {
  PcpOptions opt;
  opt.prune_quantile = 0.5f;
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, opt);
  Rng rng(9);
  auto out = gen.Generate(vertices_, *images_, &rng);
  ASSERT_TRUE(out.ok());
  int64_t pairs = 0;
  for (const MiniBatch& mb : out.value().partitions) {
    pairs += static_cast<int64_t>(mb.vertices.size() *
                                  mb.image_indices.size());
  }
  const int64_t full = static_cast<int64_t>(vertices_.size()) *
                       images_->size(0);
  EXPECT_LT(pairs, full);
}

TEST_F(PcpFixture, RespectsSubsetAndClusterCounts) {
  PcpOptions opt;
  opt.num_vertex_subsets = 3;
  opt.num_image_clusters = 2;
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, opt);
  Rng rng(10);
  auto out = gen.Generate(vertices_, *images_, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out.value().partitions.size(), 3u * 2u);
  EXPECT_GE(out.value().partitions.size(), 3u);  // >=1 cluster per subset
}

TEST_F(PcpFixture, PartitionFromProximityMatchesGenerate) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Tensor prox = gen.ComputeProximity(vertices_, *images_);
  Rng rng1(11), rng2(11);
  auto direct = gen.PartitionFromProximity(vertices_, prox, &rng1);
  auto full = gen.Generate(vertices_, *images_, &rng2);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(direct.value().size(), full.value().partitions.size());
  for (size_t i = 0; i < direct.value().size(); ++i) {
    EXPECT_EQ(direct.value()[i].vertices,
              full.value().partitions[i].vertices);
    EXPECT_EQ(direct.value()[i].image_indices,
              full.value().partitions[i].image_indices);
  }
}

TEST_F(PcpFixture, RejectsEmptyInputs) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Rng rng(12);
  EXPECT_FALSE(gen.Generate({}, *images_, &rng).ok());
  auto bad = gen.PartitionFromProximity(vertices_, Tensor(), &rng);
  EXPECT_FALSE(bad.ok());
}

// ---- Negative sampling on top of PCP partitions --------------------------

TEST_F(PcpFixture, NegativeSamplingPadsToBatchMultiple) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Rng rng(13);
  auto out = gen.Generate(vertices_, *images_, &rng);
  ASSERT_TRUE(out.ok());

  NegativeSamplingOptions ns;
  ns.batch_size = 4;
  NegativeSampler sampler(ns);
  auto padded = sampler.Apply(out.value().partitions, out.value().proximity,
                              vertices_, &rng);
  for (const MiniBatch& mb : padded) {
    // Padded to a multiple of 4 unless the image pool ran out of
    // candidates (tiny datasets); never shrunk.
    EXPECT_GE(mb.image_indices.size(), 1u);
    std::set<int64_t> uniq(mb.image_indices.begin(), mb.image_indices.end());
    EXPECT_EQ(uniq.size(), mb.image_indices.size());
  }
}

TEST_F(PcpFixture, NegativeSamplingAddsHighProximityImages) {
  // Construct one partition missing the globally closest image of its
  // vertex; the sampler must add high-proximity images first.
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Tensor prox = gen.ComputeProximity(vertices_, *images_);
  const float* s = prox.data();
  const int64_t ni = prox.size(1);
  // Top image of vertex row 0.
  int64_t top = 0;
  for (int64_t c = 1; c < ni; ++c) {
    if (s[c] > s[top]) top = c;
  }
  MiniBatch mb;
  mb.vertices = {vertices_[0]};
  for (int64_t c = 0; c < ni; ++c) {
    if (c != top && static_cast<int64_t>(mb.image_indices.size()) < 3) {
      mb.image_indices.push_back(c);
    }
  }
  NegativeSamplingOptions ns;
  ns.batch_size = 4;
  ns.max_top_k = 1;  // forces exactly the top-1 proximity image
  NegativeSampler sampler(ns);
  Rng rng(14);
  auto padded = sampler.Apply({mb}, prox, vertices_, &rng);
  ASSERT_EQ(padded.size(), 1u);
  EXPECT_EQ(padded[0].image_indices.size(), 4u);
  EXPECT_NE(std::find(padded[0].image_indices.begin(),
                      padded[0].image_indices.end(), top),
            padded[0].image_indices.end());
}

TEST_F(PcpFixture, NegativeSamplingNoopWhenAlreadyMultiple) {
  MiniBatch mb;
  mb.vertices = {vertices_[0]};
  mb.image_indices = {0, 1, 2, 3};
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  Tensor prox = gen.ComputeProximity(vertices_, *images_);
  NegativeSamplingOptions ns;
  ns.batch_size = 4;
  NegativeSampler sampler(ns);
  Rng rng(15);
  auto padded = sampler.Apply({mb}, prox, vertices_, &rng);
  EXPECT_EQ(padded[0].image_indices.size(), 4u);
}

}  // namespace
}  // namespace core
}  // namespace crossem
