#include "core/soft_prompt.h"

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace crossem {
namespace core {
namespace {

class SoftPromptFixture : public ::testing::Test {
 protected:
  SoftPromptFixture() {
    g_.AddVertex("laysan albatross");
    g_.AddVertex("white crown");
    g_.AddVertex("long wing");
    g_.AddVertex("woodpecker");
    EXPECT_TRUE(g_.AddEdge(0, 1, "has crown trait").ok());
    EXPECT_TRUE(g_.AddEdge(0, 2, "has wing trait").ok());
    EXPECT_TRUE(g_.AddEdge(3, 1, "has crown trait").ok());

    for (const char* w : {"laysan", "albatross", "white", "crown", "long",
                          "wing", "woodpecker", "a", "photo", "of"}) {
      vocab_.AddWord(w);
    }
    clip::ClipConfig cc;
    cc.vocab_size = vocab_.size();
    cc.text_context = 16;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = 8;
    cc.max_patches = 4;
    cc.embed_dim = 8;
    rng_ = std::make_unique<Rng>(3);
    model_ = std::make_unique<clip::ClipModel>(cc, rng_.get());
    tokenizer_ = std::make_unique<text::Tokenizer>(&vocab_, cc.text_context);
  }

  SoftPromptGenerator MakeGenerator(SoftPromptOptions opt = {}) {
    return SoftPromptGenerator(&g_, &model_->text(), tokenizer_.get(), opt,
                               rng_.get());
  }

  graph::Graph g_;
  text::Vocabulary vocab_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<clip::ClipModel> model_;
  std::unique_ptr<text::Tokenizer> tokenizer_;
};

TEST_F(SoftPromptFixture, VertexFeaturesInitializedFromLabels) {
  SoftPromptGenerator gen = MakeGenerator();
  const Tensor& feats = gen.vertex_features();
  EXPECT_EQ(feats.shape(), (Shape{4, 16}));
  // The feature of "laysan albatross" equals the mean of its two token
  // embeddings.
  const Tensor& table = model_->text().token_embedding().table();
  int64_t laysan = vocab_.Id("laysan");
  int64_t albatross = vocab_.Id("albatross");
  for (int64_t c = 0; c < 16; ++c) {
    float expected =
        0.5f * (table.at(laysan * 16 + c) + table.at(albatross * 16 + c));
    EXPECT_NEAR(feats.at(c), expected, 1e-5f);
  }
}

TEST_F(SoftPromptFixture, PromptFeaturesShapeAndAggregation) {
  SoftPromptOptions opt;
  opt.alpha = 1.0f;  // pure self: features unchanged by neighbors
  SoftPromptGenerator gen = MakeGenerator(opt);
  Tensor f = gen.PromptFeatures({0, 3});
  EXPECT_EQ(f.shape(), (Shape{2, 16}));
  for (int64_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(f.at(c), gen.vertex_features().at(c), 1e-5f);
  }
}

TEST_F(SoftPromptFixture, AlphaZeroUsesNeighborMean) {
  SoftPromptOptions opt;
  opt.alpha = 0.0f;
  SoftPromptGenerator gen = MakeGenerator(opt);
  Tensor f = gen.PromptFeatures({0});
  const Tensor& feats = gen.vertex_features();
  for (int64_t c = 0; c < 16; ++c) {
    float expected = 0.5f * (feats.at(1 * 16 + c) + feats.at(2 * 16 + c));
    EXPECT_NEAR(f.at(c), expected, 1e-5f);
  }
}

TEST_F(SoftPromptFixture, GraphSageBackboneWorks) {
  SoftPromptOptions opt;
  opt.backbone = SoftBackbone::kGraphSage;
  SoftPromptGenerator gen = MakeGenerator(opt);
  Tensor f = gen.PromptFeatures({0, 1, 3});
  EXPECT_EQ(f.shape(), (Shape{3, 16}));
  // GraphSAGE adds its projection parameters.
  EXPECT_GT(gen.Parameters().size(), 2u);
}

TEST_F(SoftPromptFixture, GenerateShapesAndMask) {
  SoftPromptGenerator gen = MakeGenerator();
  auto batch = gen.Generate({0, 3});
  // Row 0: "a photo of laysan albatross with white crown and long wing"
  // -> [CLS] + 11 + [SEP] = 13 tokens; row 1 ("a photo of woodpecker
  // with white crown" -> 9) is padded to it; plus the injected prompt.
  EXPECT_EQ(batch.embeddings.size(0), 2);
  EXPECT_EQ(batch.embeddings.size(1), 14);
  EXPECT_EQ(batch.embeddings.size(2), 16);
  EXPECT_EQ(batch.mask.shape(), (Shape{2, 14}));
  // Prompt slot (last position) is attended for every row.
  EXPECT_FLOAT_EQ(batch.mask.at(0 * 14 + 13), 1.0f);
  EXPECT_FLOAT_EQ(batch.mask.at(1 * 14 + 13), 1.0f);
  // All of row 0's real positions attended; row 1's pad tail masked out.
  EXPECT_FLOAT_EQ(batch.mask.at(0 * 14 + 12), 1.0f);
  EXPECT_FLOAT_EQ(batch.mask.at(1 * 14 + 12), 0.0f);
  EXPECT_FLOAT_EQ(batch.mask.at(1 * 14 + 8), 1.0f);  // row 1 [SEP]
}

TEST_F(SoftPromptFixture, EncodableByTextEncoder) {
  SoftPromptGenerator gen = MakeGenerator();
  auto batch = gen.Generate({0, 1, 2, 3});
  Tensor emb = model_->text().ForwardFromEmbeddings(batch.embeddings,
                                                    batch.mask);
  EXPECT_EQ(emb.shape(), (Shape{4, 8}));
}

TEST_F(SoftPromptFixture, GradientsReachVertexFeatures) {
  SoftPromptGenerator gen = MakeGenerator();
  auto batch = gen.Generate({0});
  Tensor emb = model_->text().ForwardFromEmbeddings(batch.embeddings,
                                                    batch.mask);
  ops::Sum(emb).Backward();
  Tensor grad = gen.vertex_features().grad();
  ASSERT_TRUE(grad.defined());
  // Vertex 0 and its neighbors (1, 2) receive gradient; vertex 3 none.
  auto row_norm = [&](int64_t v) {
    float n = 0;
    for (int64_t c = 0; c < 16; ++c) n += std::fabs(grad.at(v * 16 + c));
    return n;
  };
  EXPECT_GT(row_norm(0), 0.0f);
  EXPECT_GT(row_norm(1), 0.0f);
  EXPECT_EQ(row_norm(3), 0.0f);
}

}  // namespace
}  // namespace core
}  // namespace crossem
