// End-to-end determinism of the CrossEM+ optimization machinery under the
// parallel runtime: PCP proximity scores, mini-batch partitions, and
// k-means cluster assignments must be bitwise-identical with 1 and 8
// threads (acceptance contract of the parallel runtime).
#include <vector>

#include "core/kmeans.h"
#include "core/pcp.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "util/parallel.h"

namespace crossem {
namespace core {
namespace {

class ParallelDeterminismFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc = data::CubLikeConfig(0.4);
    ds_ = new data::CrossModalDataset(data::BuildDataset(dc));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(5);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);
    images_ = new Tensor(ds_->StackImages(ds_->TestImageIndices()));
    for (int64_t c : ds_->test_classes) {
      vertices_.push_back(ds_->entities[static_cast<size_t>(c)]);
    }
  }

  static void TearDownTestSuite() {
    SetNumThreads(0);
    delete images_;
    delete tokenizer_;
    delete model_;
    delete ds_;
    vertices_.clear();
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static Tensor* images_;
  static std::vector<graph::VertexId> vertices_;
};

data::CrossModalDataset* ParallelDeterminismFixture::ds_ = nullptr;
clip::ClipModel* ParallelDeterminismFixture::model_ = nullptr;
text::Tokenizer* ParallelDeterminismFixture::tokenizer_ = nullptr;
Tensor* ParallelDeterminismFixture::images_ = nullptr;
std::vector<graph::VertexId> ParallelDeterminismFixture::vertices_;

TEST_F(ParallelDeterminismFixture, PcpProximityBitwiseStableAcrossThreads) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  SetNumThreads(1);
  Tensor prox1 = gen.ComputeProximity(vertices_, *images_);
  SetNumThreads(8);
  Tensor prox8 = gen.ComputeProximity(vertices_, *images_);
  SetNumThreads(0);
  ASSERT_EQ(prox1.numel(), prox8.numel());
  for (int64_t i = 0; i < prox1.numel(); ++i) {
    ASSERT_EQ(prox1.at(i), prox8.at(i)) << "proximity element " << i;
  }
}

TEST_F(ParallelDeterminismFixture, PcpPartitionsStableAcrossThreads) {
  MiniBatchGenerator gen(model_, &ds_->graph, tokenizer_, PcpOptions{});
  SetNumThreads(1);
  Rng rng1(21);
  auto out1 = gen.Generate(vertices_, *images_, &rng1);
  SetNumThreads(8);
  Rng rng8(21);
  auto out8 = gen.Generate(vertices_, *images_, &rng8);
  SetNumThreads(0);
  ASSERT_TRUE(out1.ok());
  ASSERT_TRUE(out8.ok());
  ASSERT_EQ(out1.value().partitions.size(), out8.value().partitions.size());
  for (size_t i = 0; i < out1.value().partitions.size(); ++i) {
    EXPECT_EQ(out1.value().partitions[i].vertices,
              out8.value().partitions[i].vertices);
    EXPECT_EQ(out1.value().partitions[i].image_indices,
              out8.value().partitions[i].image_indices);
  }
}

TEST_F(ParallelDeterminismFixture, KMeansAssignmentsStableAcrossThreads) {
  Rng data_rng(31);
  Tensor points = Tensor::Randn({400, 12}, &data_rng);
  SetNumThreads(1);
  Rng rng1(32);
  KMeansResult r1 = KMeans(points, 7, &rng1);
  SetNumThreads(8);
  Rng rng8(32);
  KMeansResult r8 = KMeans(points, 7, &rng8);
  SetNumThreads(0);
  EXPECT_EQ(r1.assignments, r8.assignments);
  EXPECT_EQ(r1.iterations, r8.iterations);
  for (int64_t i = 0; i < r1.centroids.numel(); ++i) {
    ASSERT_EQ(r1.centroids.at(i), r8.centroids.at(i)) << "centroid " << i;
  }
}

}  // namespace
}  // namespace core
}  // namespace crossem
