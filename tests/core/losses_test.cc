#include "core/losses.h"

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace crossem {
namespace core {
namespace {

TEST(OrthogonalPromptLossTest, ZeroForOrthogonalRows) {
  Tensor f = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  EXPECT_NEAR(OrthogonalPromptLoss(f).item(), 0.0f, 1e-5f);
}

TEST(OrthogonalPromptLossTest, PositiveForParallelRows) {
  Tensor f = Tensor::FromVector({2, 2}, {1, 0, 2, 0});
  EXPECT_GT(OrthogonalPromptLoss(f).item(), 0.1f);
}

TEST(OrthogonalPromptLossTest, ScaleInvariantViaNormalization) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 1, 1, -1});
  Tensor b = ops::MulScalar(a, 100.0f);
  EXPECT_NEAR(OrthogonalPromptLoss(a).item(), OrthogonalPromptLoss(b).item(),
              1e-5f);
}

TEST(OrthogonalPromptLossTest, GradientPushesTowardOrthogonality) {
  Tensor f = Tensor::FromVector({2, 2}, {1.0f, 0.2f, 1.0f, -0.1f});
  f.set_requires_grad(true);
  float before = OrthogonalPromptLoss(f).item();
  for (int step = 0; step < 50; ++step) {
    f.ZeroGrad();
    Tensor loss = OrthogonalPromptLoss(f);
    loss.Backward();
    float* w = f.data();
    const float* g = f.grad().data();
    for (int64_t i = 0; i < f.numel(); ++i) w[i] -= 0.05f * g[i];
  }
  EXPECT_LT(OrthogonalPromptLoss(f).item(), before * 0.5f);
}

TEST(CombinedLossTest, BetaMixesLinearly) {
  Tensor lc = Tensor::Scalar(2.0f);
  Tensor lo = Tensor::Scalar(4.0f);
  EXPECT_FLOAT_EQ(CombinedLoss(lc, lo, 1.0f).item(), 2.0f);
  EXPECT_FLOAT_EQ(CombinedLoss(lc, lo, 0.0f).item(), 4.0f);
  EXPECT_FLOAT_EQ(CombinedLoss(lc, lo, 0.75f).item(), 2.5f);
}

}  // namespace
}  // namespace core
}  // namespace crossem
