// Compiled fit-step acceptance (core/step_plan.h + tensor/plan.h): a Fit
// run through trace-once/replay-many plans must be bitwise-identical to
// the pure eager path — final parameters AND checkpoint bytes — at 1 and
// 8 threads, the planner must re-trace on batch-shape or kernel-table
// changes (never replay a stale schedule), and the planned EncodeImages
// must match the eager chunked forward exactly while its per-worker plans
// replay concurrently.
#include "core/step_plan.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/crossem.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "tensor/plan.h"
#include "util/parallel.h"

namespace crossem {
namespace core {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name)->Value();
}

class StepPlanFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new data::CrossModalDataset(
        data::BuildDataset(data::CubLikeConfig(0.5)));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(29);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);
    snapshot_ = new std::vector<Tensor>(model_->SnapshotParameters());
    for (int64_t c : ds_->test_classes) {
      vertices_.push_back(ds_->entities[static_cast<size_t>(c)]);
    }
    images_ = new Tensor(ds_->StackImages(ds_->TestImageIndices()));
  }

  static void TearDownTestSuite() {
    delete snapshot_;
    delete images_;
    delete tokenizer_;
    delete model_;
    delete ds_;
    vertices_.clear();
  }

  void SetUp() override {
    plan::SetEnabled(true);
    model_->RestoreParameters(*snapshot_);
  }
  void TearDown() override {
    plan::SetEnabled(true);
    ops::SetGemmKernel(ops::GemmKernel::kBlocked);
    SetNumThreads(0);
  }

  static CrossEmOptions SoftOptions() {
    CrossEmOptions opt;
    opt.prompt_mode = PromptMode::kSoft;
    opt.epochs = 2;
    return opt;
  }

  static std::vector<std::vector<float>> PromptValues(CrossEm* m) {
    std::vector<std::vector<float>> out;
    for (const Tensor& p : m->soft_prompt()->Parameters()) {
      out.push_back(p.ToVector());
    }
    return out;
  }

  /// One Fit with the execution plan on or off; returns the final prompt
  /// parameters and the checkpoint's raw bytes.
  void RunFit(bool planned, const char* ckpt_name,
              std::vector<std::vector<float>>* params, std::string* ckpt) {
    model_->RestoreParameters(*snapshot_);
    plan::SetEnabled(planned);
    CrossEmOptions opt = SoftOptions();
    opt.checkpoint_path = TempPath(ckpt_name);
    std::remove(opt.checkpoint_path.c_str());
    CrossEm matcher(model_, &ds_->graph, tokenizer_, opt);
    auto fit = matcher.Fit(vertices_, *images_);
    ASSERT_TRUE(fit.ok()) << fit.status().message();
    *params = PromptValues(&matcher);
    *ckpt = ReadFileBytes(opt.checkpoint_path);
    plan::SetEnabled(true);
  }

  void RunPlannedVsEagerDrill(int threads, const char* tag) {
    SetNumThreads(threads);
    const int64_t replays = CounterValue("plan_replays_total");
    const int64_t backward_replays =
        CounterValue("plan_backward_replays_total");

    std::vector<std::vector<float>> planned_params, eager_params;
    std::string planned_ckpt, eager_ckpt;
    RunFit(true, (std::string("plan_ckpt_") + tag).c_str(), &planned_params,
           &planned_ckpt);
    // The planned run must actually exercise replay (forward AND
    // backward), not silently fall back to eager.
    EXPECT_GT(CounterValue("plan_replays_total"), replays);
    EXPECT_GT(CounterValue("plan_backward_replays_total"), backward_replays);

    RunFit(false, (std::string("eager_ckpt_") + tag).c_str(), &eager_params,
           &eager_ckpt);

    EXPECT_EQ(planned_params, eager_params);
    EXPECT_EQ(planned_ckpt, eager_ckpt);
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static std::vector<Tensor>* snapshot_;
  static Tensor* images_;
  static std::vector<graph::VertexId> vertices_;
};

data::CrossModalDataset* StepPlanFixture::ds_ = nullptr;
clip::ClipModel* StepPlanFixture::model_ = nullptr;
text::Tokenizer* StepPlanFixture::tokenizer_ = nullptr;
std::vector<Tensor>* StepPlanFixture::snapshot_ = nullptr;
Tensor* StepPlanFixture::images_ = nullptr;
std::vector<graph::VertexId> StepPlanFixture::vertices_;

TEST_F(StepPlanFixture, PlannedFitMatchesEagerBitwiseOneThread) {
  RunPlannedVsEagerDrill(1, "1t");
}

TEST_F(StepPlanFixture, PlannedFitMatchesEagerBitwiseEightThreads) {
  RunPlannedVsEagerDrill(8, "8t");
}

TEST_F(StepPlanFixture, RetracesOnBatchShapeChangeAndReplaysWarmShapes) {
  CrossEmOptions opt = SoftOptions();
  CrossEm matcher(model_, &ds_->graph, tokenizer_, opt);
  ASSERT_TRUE(FitStepPlanner::Eligible(opt));
  FitStepPlanner planner(model_, matcher.soft_prompt(), &opt,
                         matcher.soft_prompt()->Parameters(), *images_);

  std::vector<graph::VertexId> batch4(vertices_.begin(),
                                      vertices_.begin() + 4);
  std::vector<graph::VertexId> batch3(vertices_.begin(),
                                      vertices_.begin() + 3);
  std::vector<int64_t> image_indices{0, 1, 2, 3};

  FitStepPlanner::StepOutcome out;
  int64_t traces = CounterValue("plan_traces_total");
  ASSERT_TRUE(planner.RunForward(batch4, image_indices, &out));
  EXPECT_FALSE(out.replayed);  // cold shape: traced
  EXPECT_GT(CounterValue("plan_traces_total"), traces);

  // A different batch shape is a different plan: trace again.
  traces = CounterValue("plan_traces_total");
  ASSERT_TRUE(planner.RunForward(batch3, image_indices, &out));
  EXPECT_FALSE(out.replayed);
  EXPECT_GT(CounterValue("plan_traces_total"), traces);

  // Both shapes are warm now: replays, zero new traces.
  traces = CounterValue("plan_traces_total");
  ASSERT_TRUE(planner.RunForward(batch4, image_indices, &out));
  EXPECT_TRUE(out.replayed);
  ASSERT_TRUE(planner.RunForward(batch3, image_indices, &out));
  EXPECT_TRUE(out.replayed);
  EXPECT_EQ(CounterValue("plan_traces_total"), traces);
}

TEST_F(StepPlanFixture, KernelTableChangeForcesRetrace) {
  CrossEmOptions opt = SoftOptions();
  CrossEm matcher(model_, &ds_->graph, tokenizer_, opt);
  FitStepPlanner planner(model_, matcher.soft_prompt(), &opt,
                         matcher.soft_prompt()->Parameters(), *images_);

  std::vector<graph::VertexId> batch(vertices_.begin(), vertices_.begin() + 4);
  std::vector<int64_t> image_indices{0, 1, 2, 3};
  FitStepPlanner::StepOutcome out;
  ASSERT_TRUE(planner.RunForward(batch, image_indices, &out));
  ASSERT_TRUE(planner.RunForward(batch, image_indices, &out));
  EXPECT_TRUE(out.replayed);

  // Swapping the process-wide GEMM kernel invalidates the traced plan:
  // the next step must re-trace (never replay closures recorded against
  // a different kernel table).
  const int64_t invalidations =
      CounterValue("plan_invalidations_kernel_table_total");
  ops::SetGemmKernel(ops::GemmKernel::kReference);
  ASSERT_TRUE(planner.RunForward(batch, image_indices, &out));
  EXPECT_FALSE(out.replayed);
  EXPECT_GT(CounterValue("plan_invalidations_kernel_table_total"),
            invalidations);

  // And the re-traced plan replays under the new table.
  ASSERT_TRUE(planner.RunForward(batch, image_indices, &out));
  EXPECT_TRUE(out.replayed);
}

TEST_F(StepPlanFixture, PlannedEncodeImagesMatchesEagerConcurrently) {
  // EncodeImages spreads chunks across the pool; with plans enabled each
  // worker traces and replays its own thread-local plan. The planned
  // result must equal the eager chunked forward bitwise — run at 8
  // threads this is also the concurrent-replay drill for TSan.
  SetNumThreads(8);
  CrossEmOptions opt = SoftOptions();
  CrossEm matcher(model_, &ds_->graph, tokenizer_, opt);

  plan::SetEnabled(false);
  const Tensor eager = matcher.EncodeImages(*images_);
  plan::SetEnabled(true);
  Tensor planned = matcher.EncodeImages(*images_);
  EXPECT_EQ(planned.ToVector(), eager.ToVector());
  // Warm plans: encode again, byte-equal again.
  planned = matcher.EncodeImages(*images_);
  EXPECT_EQ(planned.ToVector(), eager.ToVector());
}

}  // namespace
}  // namespace core
}  // namespace crossem
