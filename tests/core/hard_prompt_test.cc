#include "core/hard_prompt.h"

#include "gtest/gtest.h"

namespace crossem {
namespace core {
namespace {

graph::Graph PaperFigureGraph() {
  // Figure 1(b)/3 of the paper.
  graph::Graph g;
  g.AddVertex("laysan albatross");   // v1 = 0
  g.AddVertex("white");              // v2 = 1
  g.AddVertex("black");              // v3 = 2
  g.AddVertex("long-wings");         // v4 = 3
  g.AddVertex("grey");               // v5 = 4
  EXPECT_TRUE(g.AddEdge(0, 1, "has crown color").ok());
  EXPECT_TRUE(g.AddEdge(0, 2, "has under tail color").ok());
  EXPECT_TRUE(g.AddEdge(0, 3, "has wing shape").ok());
  EXPECT_TRUE(g.AddEdge(3, 4, "has wing color").ok());
  return g;
}

TEST(HardPromptTest, BaselinePromptIsPhotoTemplate) {
  graph::Graph g = PaperFigureGraph();
  HardPromptGenerator gen(&g, HardPromptOptions{});
  EXPECT_EQ(gen.BaselinePrompt(0), "a photo of laysan albatross");
}

TEST(HardPromptTest, SerializedStyleMatchesPaperExample2) {
  graph::Graph g = PaperFigureGraph();
  HardPromptOptions opt;
  opt.hops = 2;
  opt.style = HardPromptStyle::kSerialized;
  HardPromptGenerator gen(&g, opt);
  EXPECT_EQ(gen.Generate(0),
            "laysan albatross has crown color in white, has under tail color "
            "in black, has wing shape in long-wings, and long-wings has wing "
            "color in grey");
}

TEST(HardPromptTest, CaptionStyleListsNeighbors) {
  graph::Graph g = PaperFigureGraph();
  HardPromptOptions opt;
  opt.hops = 1;
  opt.style = HardPromptStyle::kCaption;
  HardPromptGenerator gen(&g, opt);
  EXPECT_EQ(gen.Generate(0),
            "a photo of laysan albatross with white, black and long-wings");
}

TEST(HardPromptTest, CaptionStyleTwoHopsNamesParent) {
  graph::Graph g = PaperFigureGraph();
  HardPromptOptions opt;
  opt.hops = 2;
  HardPromptGenerator gen(&g, opt);
  EXPECT_EQ(gen.Generate(0),
            "a photo of laysan albatross with white, black, long-wings and "
            "long-wings grey");
}

TEST(HardPromptTest, ZeroHopsIsLabelOnly) {
  graph::Graph g = PaperFigureGraph();
  HardPromptOptions opt;
  opt.hops = 0;
  opt.style = HardPromptStyle::kSerialized;
  HardPromptGenerator gen(&g, opt);
  EXPECT_EQ(gen.Generate(0), "laysan albatross");
}

TEST(HardPromptTest, IsolatedVertexCaption) {
  graph::Graph g;
  g.AddVertex("woodpecker");
  HardPromptGenerator gen(&g, HardPromptOptions{});
  EXPECT_EQ(gen.Generate(0), "a photo of woodpecker");
}

TEST(HardPromptTest, MaxSubPromptsTruncates) {
  graph::Graph g;
  g.AddVertex("center");
  for (int i = 0; i < 10; ++i) {
    graph::VertexId v = g.AddVertex("n" + std::to_string(i));
    EXPECT_TRUE(g.AddEdge(0, v, "has part").ok());
  }
  HardPromptOptions opt;
  opt.max_sub_prompts = 3;
  HardPromptGenerator gen(&g, opt);
  std::string p = gen.Generate(0);
  // Exactly three neighbor mentions: "with X, Y and Z".
  EXPECT_NE(p.find(" with "), std::string::npos);
  EXPECT_NE(p.find(" and "), std::string::npos);
  EXPECT_EQ(std::count(p.begin(), p.end(), ','), 1);
}

TEST(HardPromptTest, AttributesOrderedBeforeRelations) {
  graph::Graph g;
  g.AddVertex("entity a");       // 0
  g.AddVertex("entity b");       // 1
  g.AddVertex("white crown");    // 2
  ASSERT_TRUE(g.AddEdge(0, 1, "rel 3").ok());          // relation first
  ASSERT_TRUE(g.AddEdge(0, 2, "has crown trait").ok());  // attribute second
  HardPromptGenerator gen(&g, HardPromptOptions{});
  std::string p = gen.Generate(0);
  // The attribute neighbor must be mentioned before the relation one.
  EXPECT_LT(p.find("white crown"), p.find("entity b"));
}

TEST(HardPromptTest, RelationNeighborsCapped) {
  graph::Graph g;
  g.AddVertex("center");
  for (int i = 0; i < 6; ++i) {
    graph::VertexId v = g.AddVertex("other" + std::to_string(i));
    ASSERT_TRUE(g.AddEdge(0, v, "rel " + std::to_string(i)).ok());
  }
  graph::VertexId attr = g.AddVertex("white crown");
  ASSERT_TRUE(g.AddEdge(0, attr, "has crown trait").ok());

  HardPromptOptions opt;
  opt.max_relation_sub_prompts = 2;
  HardPromptGenerator gen(&g, opt);
  std::string p = gen.Generate(0);
  // The attribute survives; at most 2 of the 6 relation neighbors do.
  EXPECT_NE(p.find("white crown"), std::string::npos);
  int relation_mentions = 0;
  for (int i = 0; i < 6; ++i) {
    if (p.find("other" + std::to_string(i)) != std::string::npos) {
      ++relation_mentions;
    }
  }
  EXPECT_EQ(relation_mentions, 2);
}

TEST(HardPromptTest, IncomingEdgesContribute) {
  graph::Graph g;
  g.AddVertex("white");
  g.AddVertex("albatross");
  EXPECT_TRUE(g.AddEdge(1, 0, "has color").ok());
  HardPromptOptions opt;
  opt.style = HardPromptStyle::kSerialized;
  HardPromptGenerator gen(&g, opt);
  // Prompt for the value vertex sees the entity through the in-edge.
  EXPECT_EQ(gen.Generate(0), "white has color in albatross");
}

}  // namespace
}  // namespace core
}  // namespace crossem
