#include "data/dataset.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"

namespace crossem {
namespace data {
namespace {

TEST(DatasetTest, BuildCubLikeShape) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.5));
  EXPECT_EQ(ds.name, "CUB-like");
  EXPECT_EQ(static_cast<int64_t>(ds.entities.size()),
            ds.world->num_classes());
  EXPECT_GT(ds.graph.NumEdges(), 0);
  EXPECT_EQ(static_cast<int64_t>(ds.images.size()),
            ds.world->num_classes() * 6);  // 12 * 0.5 images per class
}

TEST(DatasetTest, EntityVertexLabelsMatchClassNames) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  for (size_t c = 0; c < ds.entities.size(); ++c) {
    EXPECT_EQ(ds.graph.VertexLabel(ds.entities[c]),
              ds.world->ClassName(static_cast<int64_t>(c)));
  }
}

TEST(DatasetTest, AttributeStyleLinksEntitiesToSharedAttributeVertices) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  // Each entity has exactly attrs_per_class outgoing edges.
  for (graph::VertexId v : ds.entities) {
    EXPECT_EQ(static_cast<int64_t>(ds.graph.OutEdges(v).size()),
              ds.world->config().attrs_per_class);
  }
  // Attribute vertices are interned (fewer vertices than edges).
  EXPECT_LT(ds.graph.NumVertices(),
            static_cast<int64_t>(ds.entities.size()) +
                ds.graph.NumEdges());
}

TEST(DatasetTest, RelationalStyleAddsEntityEntityEdges) {
  CrossModalDataset ds = BuildDataset(Fb2kLikeConfig(0.5));
  int64_t entity_to_entity = 0;
  std::set<graph::VertexId> entity_set(ds.entities.begin(),
                                       ds.entities.end());
  for (graph::EdgeId e = 0; e < ds.graph.NumEdges(); ++e) {
    const auto& edge = ds.graph.GetEdge(e);
    if (entity_set.count(edge.src) && entity_set.count(edge.dst)) {
      ++entity_to_entity;
    }
  }
  EXPECT_GT(entity_to_entity, 0);
  // Attribute edges capped at attribute_edges_per_entity = 2.
  for (graph::VertexId v : ds.entities) {
    int64_t attr_edges = 0;
    for (graph::EdgeId e : ds.graph.OutEdges(v)) {
      if (!entity_set.count(ds.graph.GetEdge(e).dst)) ++attr_edges;
    }
    EXPECT_LE(attr_edges, 2);
  }
}

TEST(DatasetTest, SplitPartitionsClasses) {
  CrossModalDataset ds = BuildDataset(SunLikeConfig(0.5));
  std::set<int64_t> all;
  for (int64_t c : ds.train_classes) all.insert(c);
  for (int64_t c : ds.test_classes) all.insert(c);
  EXPECT_EQ(static_cast<int64_t>(all.size()), ds.world->num_classes());
  EXPECT_EQ(static_cast<int64_t>(ds.train_classes.size() +
                                 ds.test_classes.size()),
            ds.world->num_classes());
  EXPECT_FALSE(ds.test_classes.empty());
  EXPECT_FALSE(ds.train_classes.empty());
}

TEST(DatasetTest, TestImageIndicesOnlyTestClasses) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  std::set<int64_t> test(ds.test_classes.begin(), ds.test_classes.end());
  auto idx = ds.TestImageIndices();
  EXPECT_FALSE(idx.empty());
  for (int64_t i : idx) {
    EXPECT_TRUE(test.count(ds.images[static_cast<size_t>(i)].true_class));
  }
  // Complement check: count matches test classes * images per class
  // (scale 0.4 gives floor(12 * 0.4) = 4 images per class).
  EXPECT_EQ(idx.size(), test.size() * 4u);
}

TEST(DatasetTest, StackImagesShape) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  Tensor t = ds.StackImages({0, 1, 2});
  EXPECT_EQ(t.shape(),
            (Shape{3, 8, ds.world->config().patch_dim}));
}

TEST(DatasetTest, DeterministicAcrossBuilds) {
  CrossModalDataset a = BuildDataset(CubLikeConfig(0.4));
  CrossModalDataset b = BuildDataset(CubLikeConfig(0.4));
  EXPECT_EQ(a.test_classes, b.test_classes);
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.images[0].patches.ToVector(), b.images[0].patches.ToVector());
}

TEST(DatasetTest, VocabularyCoversGraphLabels) {
  CrossModalDataset ds = BuildDataset(Fb2kLikeConfig(0.5));
  for (const std::string& w : ds.graph.UniqueWords()) {
    EXPECT_TRUE(ds.vocab.Contains(w)) << w;
  }
}

TEST(DatasetTest, PresetScalesRelativeSizes) {
  // FB10K > FB6K > FB2K in vertices, edges and images (Table I ordering).
  CrossModalDataset f2 = BuildDataset(Fb2kLikeConfig(0.3));
  CrossModalDataset f6 = BuildDataset(Fb6kLikeConfig(0.3));
  CrossModalDataset f10 = BuildDataset(Fb10kLikeConfig(0.3));
  EXPECT_LT(f2.graph.NumVertices(), f6.graph.NumVertices());
  EXPECT_LT(f6.graph.NumVertices(), f10.graph.NumVertices());
  EXPECT_LT(f2.graph.NumEdges(), f6.graph.NumEdges());
  EXPECT_LT(f6.graph.NumEdges(), f10.graph.NumEdges());
  EXPECT_LT(f2.images.size(), f6.images.size());
  EXPECT_LT(f6.images.size(), f10.images.size());
}

}  // namespace
}  // namespace data
}  // namespace crossem
