#include "data/dataset.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "util/fault_injection.h"

namespace crossem {
namespace data {
namespace {

TEST(DatasetTest, BuildCubLikeShape) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.5));
  EXPECT_EQ(ds.name, "CUB-like");
  EXPECT_EQ(static_cast<int64_t>(ds.entities.size()),
            ds.world->num_classes());
  EXPECT_GT(ds.graph.NumEdges(), 0);
  EXPECT_EQ(static_cast<int64_t>(ds.images.size()),
            ds.world->num_classes() * 6);  // 12 * 0.5 images per class
}

TEST(DatasetTest, EntityVertexLabelsMatchClassNames) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  for (size_t c = 0; c < ds.entities.size(); ++c) {
    EXPECT_EQ(ds.graph.VertexLabel(ds.entities[c]),
              ds.world->ClassName(static_cast<int64_t>(c)));
  }
}

TEST(DatasetTest, AttributeStyleLinksEntitiesToSharedAttributeVertices) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  // Each entity has exactly attrs_per_class outgoing edges.
  for (graph::VertexId v : ds.entities) {
    EXPECT_EQ(static_cast<int64_t>(ds.graph.OutEdges(v).size()),
              ds.world->config().attrs_per_class);
  }
  // Attribute vertices are interned (fewer vertices than edges).
  EXPECT_LT(ds.graph.NumVertices(),
            static_cast<int64_t>(ds.entities.size()) +
                ds.graph.NumEdges());
}

TEST(DatasetTest, RelationalStyleAddsEntityEntityEdges) {
  CrossModalDataset ds = BuildDataset(Fb2kLikeConfig(0.5));
  int64_t entity_to_entity = 0;
  std::set<graph::VertexId> entity_set(ds.entities.begin(),
                                       ds.entities.end());
  for (graph::EdgeId e = 0; e < ds.graph.NumEdges(); ++e) {
    const auto& edge = ds.graph.GetEdge(e);
    if (entity_set.count(edge.src) && entity_set.count(edge.dst)) {
      ++entity_to_entity;
    }
  }
  EXPECT_GT(entity_to_entity, 0);
  // Attribute edges capped at attribute_edges_per_entity = 2.
  for (graph::VertexId v : ds.entities) {
    int64_t attr_edges = 0;
    for (graph::EdgeId e : ds.graph.OutEdges(v)) {
      if (!entity_set.count(ds.graph.GetEdge(e).dst)) ++attr_edges;
    }
    EXPECT_LE(attr_edges, 2);
  }
}

TEST(DatasetTest, SplitPartitionsClasses) {
  CrossModalDataset ds = BuildDataset(SunLikeConfig(0.5));
  std::set<int64_t> all;
  for (int64_t c : ds.train_classes) all.insert(c);
  for (int64_t c : ds.test_classes) all.insert(c);
  EXPECT_EQ(static_cast<int64_t>(all.size()), ds.world->num_classes());
  EXPECT_EQ(static_cast<int64_t>(ds.train_classes.size() +
                                 ds.test_classes.size()),
            ds.world->num_classes());
  EXPECT_FALSE(ds.test_classes.empty());
  EXPECT_FALSE(ds.train_classes.empty());
}

TEST(DatasetTest, TestImageIndicesOnlyTestClasses) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  std::set<int64_t> test(ds.test_classes.begin(), ds.test_classes.end());
  auto idx = ds.TestImageIndices();
  EXPECT_FALSE(idx.empty());
  for (int64_t i : idx) {
    EXPECT_TRUE(test.count(ds.images[static_cast<size_t>(i)].true_class));
  }
  // Complement check: count matches test classes * images per class
  // (scale 0.4 gives floor(12 * 0.4) = 4 images per class).
  EXPECT_EQ(idx.size(), test.size() * 4u);
}

TEST(DatasetTest, StackImagesShape) {
  CrossModalDataset ds = BuildDataset(CubLikeConfig(0.4));
  Tensor t = ds.StackImages({0, 1, 2});
  EXPECT_EQ(t.shape(),
            (Shape{3, 8, ds.world->config().patch_dim}));
}

TEST(DatasetTest, DeterministicAcrossBuilds) {
  CrossModalDataset a = BuildDataset(CubLikeConfig(0.4));
  CrossModalDataset b = BuildDataset(CubLikeConfig(0.4));
  EXPECT_EQ(a.test_classes, b.test_classes);
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.images[0].patches.ToVector(), b.images[0].patches.ToVector());
}

TEST(DatasetTest, VocabularyCoversGraphLabels) {
  CrossModalDataset ds = BuildDataset(Fb2kLikeConfig(0.5));
  for (const std::string& w : ds.graph.UniqueWords()) {
    EXPECT_TRUE(ds.vocab.Contains(w)) << w;
  }
}

TEST(DatasetTest, PresetScalesRelativeSizes) {
  // FB10K > FB6K > FB2K in vertices, edges and images (Table I ordering).
  CrossModalDataset f2 = BuildDataset(Fb2kLikeConfig(0.3));
  CrossModalDataset f6 = BuildDataset(Fb6kLikeConfig(0.3));
  CrossModalDataset f10 = BuildDataset(Fb10kLikeConfig(0.3));
  EXPECT_LT(f2.graph.NumVertices(), f6.graph.NumVertices());
  EXPECT_LT(f6.graph.NumVertices(), f10.graph.NumVertices());
  EXPECT_LT(f2.graph.NumEdges(), f6.graph.NumEdges());
  EXPECT_LT(f6.graph.NumEdges(), f10.graph.NumEdges());
  EXPECT_LT(f2.images.size(), f6.images.size());
  EXPECT_LT(f6.images.size(), f10.images.size());
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// A 2-image repository with a ragged patch count ("a" has 2 patches,
/// "b" has 1, so "b"'s second row is load-style zero padding).
ImageRepository SmallRepo() {
  ImageRepository repo;
  repo.ids = {"a", "b"};
  repo.patches = Tensor::FromVector(
      {2, 2, 3}, {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f,   // a: two patches
                  7.0f, 8.0f, 9.0f, 0.0f, 0.0f, 0.0f});  // b: one + padding
  return repo;
}

TEST(ImageRepositoryTest, CsvRoundTrip) {
  const std::string path = TempPath("repo_roundtrip.csv");
  const ImageRepository repo = SmallRepo();
  ASSERT_TRUE(SaveImageRepositoryCsv(repo, path).ok());
  EXPECT_FALSE(io::FileExists(path + ".tmp"));

  auto loaded = LoadImageRepositoryCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().ids, repo.ids);
  EXPECT_EQ(loaded.value().patches.shape(), repo.patches.shape());
  EXPECT_EQ(loaded.value().patches.ToVector(), repo.patches.ToVector());
  std::remove(path.c_str());
}

TEST(ImageRepositoryTest, LoadRejectsMissingAndMalformedFiles) {
  auto missing = LoadImageRepositoryCsv(TempPath("no_such_repo.csv"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
  EXPECT_NE(missing.status().ToString().find("no_such_repo.csv"),
            std::string::npos);

  const std::string path = TempPath("bad_repo.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("img_without_features\n", f);
    std::fclose(f);
  }
  auto bad = LoadImageRepositoryCsv(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(ImageRepositoryTest, SaveValidatesShape) {
  ImageRepository repo = SmallRepo();
  repo.ids.push_back("extra-id-without-patches");
  EXPECT_EQ(SaveImageRepositoryCsv(repo, TempPath("bad_shape.csv")).code(),
            StatusCode::kInvalidArgument);
}

class ImageRepositoryFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Clear(); }
  void TearDown() override { fault::Clear(); }
};

TEST_F(ImageRepositoryFaultTest, SaveFaultsSurfaceAsStatusWithoutTmpFiles) {
  const ImageRepository repo = SmallRepo();
  const std::string path = TempPath("repo_fault.csv");
  struct Case {
    const char* name;
    fault::FileOp op;
  };
  for (const Case& c :
       {Case{"open", fault::FileOp::kOpen}, Case{"write", fault::FileOp::kWrite},
        Case{"flush", fault::FileOp::kFlush},
        Case{"rename", fault::FileOp::kRename}}) {
    SCOPED_TRACE(c.name);
    fault::FailOn(c.op, 1);
    Status st = SaveImageRepositoryCsv(repo, path);
    fault::Clear();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
    EXPECT_NE(st.ToString().find(path), std::string::npos) << st.ToString();
    EXPECT_FALSE(io::FileExists(path + ".tmp"));
    EXPECT_FALSE(io::FileExists(path));
  }
  ASSERT_TRUE(SaveImageRepositoryCsv(repo, path).ok());
  std::remove(path.c_str());
}

TEST_F(ImageRepositoryFaultTest, ReadFaultSurfacesAsStatus) {
  const std::string path = TempPath("repo_read_fault.csv");
  ASSERT_TRUE(SaveImageRepositoryCsv(SmallRepo(), path).ok());
  fault::FailOn(fault::FileOp::kRead, 1);
  auto loaded = LoadImageRepositoryCsv(path);
  fault::Clear();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().ToString().find(path), std::string::npos);
  std::remove(path.c_str());
}

// Runs only under the dedicated CTest entry that sets CROSSEM_FAULT_SPEC.
TEST(DatasetEnvFaultTest, EnvSpecFailsRepositoryIo) {
  const char* spec = std::getenv("CROSSEM_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') {
    GTEST_SKIP() << "CROSSEM_FAULT_SPEC not set";
  }
  const std::string path = TempPath("repo_env_fault.csv");
  Status st = SaveImageRepositoryCsv(SmallRepo(), path);
  EXPECT_FALSE(st.ok()) << "spec '" << spec << "' should fail the save";
  EXPECT_NE(st.ToString().find(path), std::string::npos) << st.ToString();
  EXPECT_FALSE(io::FileExists(path + ".tmp"));
  fault::Clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace crossem
