#include "data/world.h"

#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace crossem {
namespace data {
namespace {

WorldConfig SmallConfig() {
  WorldConfig c;
  c.num_attributes = 20;
  c.num_classes = 8;
  c.attrs_per_class = 4;
  c.patch_dim = 12;
  c.seed = 5;
  return c;
}

TEST(WorldTest, DeterministicGivenSeed) {
  World a(SmallConfig());
  World b(SmallConfig());
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.ClassName(i), b.ClassName(i));
    EXPECT_EQ(a.ClassAttributes(i), b.ClassAttributes(i));
  }
  EXPECT_EQ(a.AttributeVisual(3), b.AttributeVisual(3));
}

TEST(WorldTest, ClassNamesAreUnique) {
  WorldConfig c = SmallConfig();
  c.num_classes = 50;
  World w(c);
  std::set<std::string> names;
  for (int64_t i = 0; i < 50; ++i) names.insert(w.ClassName(i));
  EXPECT_EQ(names.size(), 50u);
}

TEST(WorldTest, AttributeNamesAreUnique) {
  WorldConfig c = SmallConfig();
  c.num_attributes = 300;  // beyond adjective x part combinations
  World w(c);
  std::set<std::string> names;
  for (int64_t i = 0; i < 300; ++i) names.insert(w.AttributeName(i));
  EXPECT_EQ(names.size(), 300u);
}

TEST(WorldTest, ClassAttributesAreValidAndDistinct) {
  World w(SmallConfig());
  for (int64_t c = 0; c < w.num_classes(); ++c) {
    const auto& attrs = w.ClassAttributes(c);
    EXPECT_EQ(static_cast<int64_t>(attrs.size()), 4);
    std::set<int64_t> uniq(attrs.begin(), attrs.end());
    EXPECT_EQ(uniq.size(), attrs.size());
    for (int64_t a : attrs) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, w.num_attributes());
    }
  }
}

TEST(WorldTest, VisualCodesAreUnitLength) {
  World w(SmallConfig());
  for (int64_t a = 0; a < w.num_attributes(); ++a) {
    double norm2 = 0;
    for (float x : w.AttributeVisual(a)) norm2 += static_cast<double>(x) * x;
    EXPECT_NEAR(norm2, 1.0, 1e-5);
  }
}

TEST(WorldTest, SampleImageShapeAndClass) {
  World w(SmallConfig());
  Rng rng(1);
  SyntheticImage img = w.SampleImage(2, 6, 3, &rng);
  EXPECT_EQ(img.true_class, 2);
  EXPECT_EQ(img.patches.shape(), (Shape{6, 12}));
}

TEST(WorldTest, AttributePatchesCorrelateWithCodebook) {
  WorldConfig c = SmallConfig();
  c.patch_noise = 0.05f;  // low noise for a crisp check
  World w(c);
  Rng rng(2);
  SyntheticImage img = w.SampleImage(0, 4, 4, &rng);
  // Every attribute patch (all 4 here) should be near some class attribute.
  const auto& attrs = w.ClassAttributes(0);
  for (int64_t p = 0; p < 4; ++p) {
    double best = -2;
    for (int64_t a : attrs) {
      const auto& code = w.AttributeVisual(a);
      double dot = 0;
      for (int64_t d = 0; d < 12; ++d) {
        dot += static_cast<double>(img.patches.at(p * 12 + d)) *
               code[static_cast<size_t>(d)];
      }
      best = std::max(best, dot);
    }
    EXPECT_GT(best, 0.5);
  }
}

TEST(WorldTest, BackgroundPatchesWhenFewerAttrsShown) {
  WorldConfig c = SmallConfig();
  c.patch_noise = 0.01f;
  World w(c);
  Rng rng(3);
  SyntheticImage img = w.SampleImage(0, 6, 2, &rng);
  // Rows 2..5 are background noise: tiny norm at this noise level.
  for (int64_t p = 2; p < 6; ++p) {
    double norm2 = 0;
    for (int64_t d = 0; d < 12; ++d) {
      double x = img.patches.at(p * 12 + d);
      norm2 += x * x;
    }
    EXPECT_LT(norm2, 0.1);
  }
}

TEST(WorldTest, CaptionMentionsClassAndAttributes) {
  World w(SmallConfig());
  Rng rng(4);
  std::string cap = w.SampleCaption(1, 2, &rng);
  EXPECT_NE(cap.find(w.ClassName(1)), std::string::npos);
  EXPECT_NE(cap.find(" with "), std::string::npos);
  EXPECT_NE(cap.find(" and "), std::string::npos);
}

TEST(WorldTest, CaptionWithZeroAttrsIsJustThePhoto) {
  World w(SmallConfig());
  Rng rng(5);
  std::string cap = w.SampleCaption(1, 0, &rng);
  EXPECT_EQ(cap, "a photo of " + w.ClassName(1));
}

TEST(WorldTest, VocabularyCoversNames) {
  World w(SmallConfig());
  auto words = w.VocabularyWords();
  std::set<std::string> vocab(words.begin(), words.end());
  // Every word of every class/attribute name must be in the vocabulary.
  auto check_words = [&](const std::string& name) {
    std::istringstream in(name);
    std::string tok;
    while (in >> tok) EXPECT_TRUE(vocab.count(tok)) << tok;
  };
  for (int64_t c = 0; c < w.num_classes(); ++c) check_words(w.ClassName(c));
  for (int64_t a = 0; a < w.num_attributes(); ++a) {
    check_words(w.AttributeName(a));
  }
}

}  // namespace
}  // namespace data
}  // namespace crossem
