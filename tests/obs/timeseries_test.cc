// The time-series flight recorder: manual sampling into per-metric
// rings, ring bounding, the JSON dump, tick-drop accounting, and the
// sampler thread racing live metric writers (the TSan ctest entry
// timeseries_tsan re-runs the *Concurrent* tests under the race
// detector).
#include "obs/timeseries.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "graph/json.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace crossem {
namespace obs {
namespace {

TEST(TimeSeriesTest, SampleOnceRecordsCountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("ts_requests")->Add(5);
  registry.GetGauge("ts_depth")->Set(3.5);
  Histogram* h = registry.GetHistogram("ts_latency_us");
  h->Record(100);
  h->Record(200);

  TimeSeriesRecorder recorder(&registry, {});
  recorder.SampleOnce();
  registry.GetCounter("ts_requests")->Add(2);
  recorder.SampleOnce();

  EXPECT_EQ(recorder.PointCount("ts_requests"), 2);
  EXPECT_EQ(recorder.PointCount("ts_depth"), 2);
  EXPECT_EQ(recorder.PointCount("ts_latency_us"), 2);
  EXPECT_EQ(recorder.PointCount("ts_latency_us:count"), 2);
  EXPECT_EQ(recorder.PointCount("ts_unknown"), 0);
  EXPECT_EQ(recorder.GetStats().samples, 2);
  EXPECT_EQ(recorder.GetStats().dropped, 0);
}

TEST(TimeSeriesTest, RingIsBoundedOldestEvicted) {
  MetricsRegistry registry;
  registry.GetCounter("ts_ring")->Increment();
  TimeSeriesOptions options;
  options.points_per_metric = 4;
  TimeSeriesRecorder recorder(&registry, options);
  for (int i = 0; i < 10; ++i) recorder.SampleOnce();
  EXPECT_EQ(recorder.PointCount("ts_ring"), 4);
  EXPECT_EQ(recorder.GetStats().samples, 10);
}

TEST(TimeSeriesTest, RenderJsonParsesAndCarriesSeries) {
  MetricsRegistry registry;
  registry.GetCounter("ts_json_counter")->Add(7);
  TimeSeriesRecorder recorder(&registry, {});
  recorder.SampleOnce();
  recorder.SampleOnce();

  auto doc = graph::ParseJson(recorder.RenderJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().Find("samples")->number_value(), 2.0);
  EXPECT_EQ(doc.value().Find("dropped")->number_value(), 0.0);
  const graph::JsonValue* series = doc.value().Find("series");
  ASSERT_NE(series, nullptr);
  const graph::JsonValue* counter = series->Find("ts_json_counter");
  ASSERT_NE(counter, nullptr);
  ASSERT_EQ(counter->Find("t_us")->array_items().size(), 2u);
  ASSERT_EQ(counter->Find("v")->array_items().size(), 2u);
  EXPECT_EQ(counter->Find("v")->array_items()[0].number_value(), 7.0);
  // Sample timestamps are monotone.
  EXPECT_LE(counter->Find("t_us")->array_items()[0].number_value(),
            counter->Find("t_us")->array_items()[1].number_value());
}

TEST(TimeSeriesTest, StartStopIsIdempotentAndJoins) {
  MetricsRegistry registry;
  registry.GetCounter("ts_started")->Increment();
  TimeSeriesOptions options;
  options.interval_micros = 1000;  // 1ms ticks
  TimeSeriesRecorder recorder(&registry, options);
  recorder.Start();
  recorder.Start();  // no second thread
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  recorder.Stop();
  recorder.Stop();  // no-op
  const auto stats = recorder.GetStats();
  EXPECT_GT(stats.samples, 0);
  // Restartable after Stop.
  recorder.Start();
  recorder.Stop();
}

// Sampler thread ticking fast while writer threads mutate the registry
// and a reader renders JSON — the shape the race detector must bless.
TEST(TimeSeriesTest, ConcurrentRecordWhileSampling) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.interval_micros = 500;  // 0.5ms: maximize sampler overlap
  options.points_per_metric = 64;
  TimeSeriesRecorder recorder(&registry, options);
  recorder.Start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&registry, &stop, w] {
      Counter* counter =
          registry.GetCounter("ts_conc_" + std::to_string(w));
      Histogram* hist = registry.GetHistogram("ts_conc_lat");
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        hist->Record(i++ % 1000);
      }
    });
  }
  std::thread reader([&recorder, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)recorder.RenderJson();
      (void)recorder.PointCount("ts_conc_0");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (std::thread& t : writers) t.join();
  reader.join();
  recorder.Stop();

  const auto stats = recorder.GetStats();
  EXPECT_GT(stats.samples, 0);
  EXPECT_GT(recorder.PointCount("ts_conc_0"), 0);
  auto doc = graph::ParseJson(recorder.RenderJson());
  EXPECT_TRUE(doc.ok());
}

}  // namespace
}  // namespace obs
}  // namespace crossem
