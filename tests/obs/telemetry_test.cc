// Per-epoch training telemetry: the JSONL schema (every line parses,
// every field present) both for the formatter in isolation and for a
// real CrossEm::Fit writing --telemetry-out style output.
#include "obs/telemetry.h"

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "core/crossem.h"
#include "data/dataset.h"
#include "graph/json.h"
#include "gtest/gtest.h"

namespace crossem {
namespace obs {
namespace {

const char* const kRequiredKeys[] = {
    "epoch",         "loss",
    "grad_norm",     "learning_rate",
    "num_batches",   "num_pairs",
    "bad_batches",   "retries",
    "peak_bytes",    "seconds",
    "batch_gen_seconds", "encode_seconds",
    "score_seconds", "backward_seconds",
    "optimizer_seconds"};

TEST(EpochTelemetryJsonTest, AllFieldsPresentAndCorrect) {
  EpochTelemetry t;
  t.epoch = 3;
  t.loss = 1.25;
  t.grad_norm = 0.5;
  t.learning_rate = 0.001;
  t.num_batches = 7;
  t.num_pairs = 112;
  t.bad_batches = 1;
  t.retries = 2;
  t.peak_bytes = 4096;
  t.seconds = 1.5;
  t.batch_gen_seconds = 0.1;
  t.encode_seconds = 0.7;
  t.score_seconds = 0.2;
  t.backward_seconds = 0.3;
  t.optimizer_seconds = 0.05;

  auto doc = graph::ParseJson(EpochTelemetryJson(t));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const graph::JsonValue& root = doc.value();
  for (const char* key : kRequiredKeys) {
    ASSERT_NE(root.Find(key), nullptr) << "missing key " << key;
  }
  EXPECT_DOUBLE_EQ(root.Find("epoch")->number_value(), 3.0);
  EXPECT_DOUBLE_EQ(root.Find("loss")->number_value(), 1.25);
  EXPECT_DOUBLE_EQ(root.Find("grad_norm")->number_value(), 0.5);
  EXPECT_DOUBLE_EQ(root.Find("num_pairs")->number_value(), 112.0);
  EXPECT_DOUBLE_EQ(root.Find("optimizer_seconds")->number_value(), 0.05);
}

TEST(EpochTelemetryJsonTest, NonFiniteValuesRenderAsNull) {
  EpochTelemetry t;
  t.loss = std::nan("");
  t.grad_norm = std::numeric_limits<double>::infinity();
  auto doc = graph::ParseJson(EpochTelemetryJson(t));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc.value().Find("loss")->is_null());
  EXPECT_TRUE(doc.value().Find("grad_norm")->is_null());
  EXPECT_DOUBLE_EQ(doc.value().Find("seconds")->number_value(), 0.0);
}

// End-to-end: a small soft-prompt Fit with telemetry_path produces one
// parseable JSONL line per epoch matching FitStats, and a re-run
// truncates rather than appends.
TEST(TrainingTelemetryTest, FitWritesOneSchemaValidLinePerEpoch) {
  data::CrossModalDataset ds =
      data::BuildDataset(data::CubLikeConfig(0.5));
  clip::ClipConfig cc;
  cc.vocab_size = ds.vocab.size();
  cc.text_context = 32;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = ds.world->config().patch_dim;
  cc.max_patches = 16;
  cc.embed_dim = 12;
  Rng rng(21);
  clip::ClipModel model(cc, &rng);
  text::Tokenizer tokenizer(&ds.vocab, cc.text_context);
  std::vector<graph::VertexId> vertices;
  for (int64_t c : ds.test_classes) {
    vertices.push_back(ds.entities[static_cast<size_t>(c)]);
  }
  Tensor images = ds.StackImages(ds.TestImageIndices());

  const std::string path =
      std::string(::testing::TempDir()) + "/fit_telemetry.jsonl";
  core::CrossEmOptions opt;
  opt.prompt_mode = core::PromptMode::kSoft;
  opt.epochs = 2;
  opt.telemetry_path = path;
  core::CrossEm matcher(&model, &ds.graph, &tokenizer, opt);
  auto stats = matcher.Fit(vertices, images);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().epochs.size(), 2u);

  auto read_lines = [&] {
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    return lines;
  };
  std::vector<std::string> lines = read_lines();
  ASSERT_EQ(lines.size(), 2u);
  for (size_t i = 0; i < lines.size(); ++i) {
    auto doc = graph::ParseJson(lines[i]);
    ASSERT_TRUE(doc.ok()) << "line " << i << ": " << doc.status().ToString();
    const graph::JsonValue& root = doc.value();
    for (const char* key : kRequiredKeys) {
      ASSERT_NE(root.Find(key), nullptr)
          << "line " << i << " missing key " << key;
    }
    EXPECT_DOUBLE_EQ(root.Find("epoch")->number_value(),
                     static_cast<double>(i));
    const auto& es = stats.value().epochs[i];
    EXPECT_NEAR(root.Find("loss")->number_value(), es.loss, 1e-6);
    EXPECT_DOUBLE_EQ(root.Find("num_batches")->number_value(),
                     static_cast<double>(es.num_batches));
    EXPECT_GT(root.Find("seconds")->number_value(), 0.0);
    // The phase breakdown must not exceed the epoch wall time.
    const double phases = root.Find("batch_gen_seconds")->number_value() +
                          root.Find("encode_seconds")->number_value() +
                          root.Find("score_seconds")->number_value() +
                          root.Find("backward_seconds")->number_value() +
                          root.Find("optimizer_seconds")->number_value();
    EXPECT_LE(phases, root.Find("seconds")->number_value() + 1e-6);
    EXPECT_GT(phases, 0.0);
  }

  // A fresh (non-resumed) run truncates: still one line per epoch.
  auto again = matcher.Fit(vertices, images);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(read_lines().size(), 2u);
}

TEST(TrainingTelemetryTest, UnwritablePathFailsFit) {
  data::CrossModalDataset ds =
      data::BuildDataset(data::CubLikeConfig(0.5));
  clip::ClipConfig cc;
  cc.vocab_size = ds.vocab.size();
  cc.text_context = 32;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = ds.world->config().patch_dim;
  cc.max_patches = 16;
  cc.embed_dim = 12;
  Rng rng(22);
  clip::ClipModel model(cc, &rng);
  text::Tokenizer tokenizer(&ds.vocab, cc.text_context);
  std::vector<graph::VertexId> vertices;
  for (int64_t c : ds.test_classes) {
    vertices.push_back(ds.entities[static_cast<size_t>(c)]);
  }
  Tensor images = ds.StackImages(ds.TestImageIndices());

  core::CrossEmOptions opt;
  opt.prompt_mode = core::PromptMode::kSoft;
  opt.epochs = 1;
  opt.telemetry_path = "/nonexistent-dir/telemetry.jsonl";
  core::CrossEm matcher(&model, &ds.graph, &tokenizer, opt);
  auto stats = matcher.Fit(vertices, images);
  EXPECT_FALSE(stats.ok());
}

}  // namespace
}  // namespace obs
}  // namespace crossem
