// Request traces and the tail-sampled tracez buffer: trace identity
// (mint / derive / traceparent round-trip), span recording with drop
// accounting, and the eviction bias that keeps error/degraded/slow
// traces alive while fast-ok traces rotate out.
#include "obs/tracez.h"

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/json.h"
#include "gtest/gtest.h"
#include "obs/request_trace.h"

namespace crossem {
namespace obs {
namespace {

std::shared_ptr<RequestTrace> MakeTrace(const std::string& request_id,
                                        int status, int64_t duration_us,
                                        bool degraded = false) {
  auto trace = std::make_shared<RequestTrace>(MintTraceId(), request_id,
                                              "test-tenant");
  RequestSpan span(trace, "child", trace->root_span_id());
  span.Arg("k", int64_t{7});
  span.End();
  trace->Complete(status, duration_us, degraded);
  return trace;
}

TEST(RequestTraceId, MintedIdsAreValidAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    TraceId id = MintTraceId();
    EXPECT_TRUE(id.valid());
    seen.insert(TraceIdHex(id));
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(TraceIdHex(MintTraceId()).size(), 32u);
  EXPECT_EQ(SpanIdHex(MintSpanId()).size(), 16u);
}

TEST(RequestTraceId, DeriveIsStable) {
  const TraceId a = DeriveTraceId("req-abc");
  const TraceId b = DeriveTraceId("req-abc");
  const TraceId c = DeriveTraceId("req-abd");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_TRUE(a.hi != c.hi || a.lo != c.lo);
}

TEST(RequestTraceId, TraceparentRoundTrip) {
  const TraceId id = MintTraceId();
  const uint64_t span = MintSpanId();
  const std::string header = FormatTraceparent(id, span);
  ASSERT_EQ(header.size(), 55u);

  TraceId parsed_id;
  uint64_t parsed_span = 0;
  ASSERT_TRUE(ParseTraceparent(header, &parsed_id, &parsed_span));
  EXPECT_EQ(parsed_id.hi, id.hi);
  EXPECT_EQ(parsed_id.lo, id.lo);
  EXPECT_EQ(parsed_span, span);
}

TEST(RequestTraceId, TraceparentRejectsMalformed) {
  TraceId id;
  uint64_t span = 0;
  EXPECT_FALSE(ParseTraceparent("", &id, &span));
  EXPECT_FALSE(ParseTraceparent("00-zz", &id, &span));
  // All-zero trace id is invalid per the W3C spec.
  EXPECT_FALSE(ParseTraceparent(
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01", &id,
      &span));
  // All-zero parent span id likewise.
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", &id,
      &span));
  // Version ff is reserved.
  EXPECT_FALSE(ParseTraceparent(
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &id,
      &span));
  // Wrong separator positions.
  EXPECT_FALSE(ParseTraceparent(
      "00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &id,
      &span));
}

TEST(RequestTraceTest, RecordsSpansWithParentIds) {
  auto trace = std::make_shared<RequestTrace>(MintTraceId(), "req-1", "t");
  {
    RequestSpan outer(trace, "outer", trace->root_span_id());
    RequestSpan inner(trace, "inner", outer.span_id());
    inner.Arg("shard", int64_t{3});
  }
  trace->Complete(200, 1234, false);

  const std::vector<RequestSpanRecord> spans = trace->Spans();
  // inner, outer (ended in reverse declaration order), then "request".
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_STREQ(spans[2].name, "request");
  EXPECT_EQ(spans[1].parent_span_id, trace->root_span_id());
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_EQ(spans[2].span_id, trace->root_span_id());
  EXPECT_EQ(spans[2].parent_span_id, 0u);
  EXPECT_TRUE(trace->completed());
  EXPECT_EQ(trace->http_status(), 200);
  EXPECT_EQ(trace->duration_us(), 1234);
  EXPECT_EQ(trace->dropped_spans(), 0);
}

TEST(RequestTraceTest, NullTraceSpansAreNoOps) {
  RequestSpan span(nullptr, "ghost", 42);
  span.Arg("k", int64_t{1}).Arg("v", 0.5);
  span.End();
  EXPECT_EQ(span.span_id(), 0u);
}

TEST(RequestTraceTest, DropsSpansPastTheCap) {
  auto trace = std::make_shared<RequestTrace>(MintTraceId(), "req-big", "t");
  for (int64_t i = 0; i < RequestTrace::kMaxSpans + 10; ++i) {
    trace->Record("s", MintSpanId(), trace->root_span_id(), RequestNowNs(),
                  1, {});
  }
  EXPECT_EQ(static_cast<int64_t>(trace->Spans().size()),
            RequestTrace::kMaxSpans);
  EXPECT_EQ(trace->dropped_spans(), 10);
}

TEST(TracezTest, RetainsMostRecentUpToCapacity) {
  TracezOptions options;
  options.capacity = 4;
  TracezBuffer buffer(options);
  for (int i = 0; i < 10; ++i) {
    buffer.Record(MakeTrace("req-" + std::to_string(i), 200, 100));
  }
  EXPECT_EQ(buffer.size(), 4);
  EXPECT_EQ(buffer.recorded(), 10);
  EXPECT_EQ(buffer.evicted(), 6);
  auto kept = buffer.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front()->request_id(), "req-6");
  EXPECT_EQ(kept.back()->request_id(), "req-9");
}

TEST(TracezTest, EvictionSparesInterestingTraces) {
  TracezOptions options;
  options.capacity = 4;
  TracezBuffer buffer(options);
  // Two interesting traces (an error and a degraded answer) buried
  // under a stream of fast-ok ones.
  buffer.Record(MakeTrace("error", 503, 100));
  buffer.Record(MakeTrace("degraded", 206, 100, /*degraded=*/true));
  for (int i = 0; i < 20; ++i) {
    buffer.Record(MakeTrace("ok-" + std::to_string(i), 200, 100));
  }
  std::set<std::string> ids;
  for (const auto& t : buffer.Snapshot()) ids.insert(t->request_id());
  EXPECT_EQ(buffer.size(), 4);
  EXPECT_TRUE(ids.count("error"));
  EXPECT_TRUE(ids.count("degraded"));
}

TEST(TracezTest, SlowTracesCountAsInteresting) {
  TracezOptions options;
  options.capacity = 3;
  options.slow_threshold_us = 1000;
  TracezBuffer buffer(options);
  buffer.Record(MakeTrace("slow", 200, 50000));  // way above the floor
  for (int i = 0; i < 10; ++i) {
    buffer.Record(MakeTrace("fast-" + std::to_string(i), 200, 10));
  }
  std::set<std::string> ids;
  for (const auto& t : buffer.Snapshot()) ids.insert(t->request_id());
  EXPECT_TRUE(ids.count("slow"));
}

TEST(TracezTest, InterestingTracesEvictOldestWhenFull) {
  TracezOptions options;
  options.capacity = 2;
  TracezBuffer buffer(options);
  buffer.Record(MakeTrace("err-0", 500, 100));
  buffer.Record(MakeTrace("err-1", 500, 100));
  buffer.Record(MakeTrace("err-2", 500, 100));
  auto kept = buffer.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.front()->request_id(), "err-1");
  EXPECT_EQ(kept.back()->request_id(), "err-2");
  EXPECT_EQ(buffer.evicted(), 1);
}

TEST(TracezTest, RenderJsonParsesAndCarriesSpans) {
  TracezBuffer buffer;
  buffer.Record(MakeTrace("req-json", 206, 2500, /*degraded=*/true));
  const std::string json = buffer.RenderJson();
  auto doc = graph::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  const graph::JsonValue* traces = doc.value().Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_EQ(traces->array_items().size(), 1u);
  const graph::JsonValue& t = traces->array_items()[0];
  EXPECT_EQ(t.Find("request_id")->string_value(), "req-json");
  EXPECT_EQ(t.Find("status")->number_value(), 206.0);
  EXPECT_TRUE(t.Find("degraded")->bool_value());
  const graph::JsonValue* spans = t.Find("spans");
  ASSERT_NE(spans, nullptr);
  // "child" plus the root "request" span.
  EXPECT_EQ(spans->array_items().size(), 2u);
}

TEST(TracezTest, RenderHtmlEscapesClientStrings) {
  TracezBuffer buffer;
  buffer.Record(MakeTrace("<script>alert(1)</script>", 200, 100));
  const std::string html = buffer.RenderHtml();
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(TracezTest, ClearResetsEverything) {
  TracezBuffer buffer;
  buffer.Record(MakeTrace("req", 200, 100));
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0);
  EXPECT_EQ(buffer.recorded(), 0);
  EXPECT_EQ(buffer.evicted(), 0);
  EXPECT_TRUE(buffer.Snapshot().empty());
}

// Many threads completing requests into one buffer while a reader
// renders: the TSan ctest entry (timeseries_tsan) re-runs this under
// the race detector.
TEST(TracezTest, ConcurrentRecordAndRender) {
  TracezOptions options;
  options.capacity = 16;
  TracezBuffer buffer(options);
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&buffer, w] {
      for (int i = 0; i < 50; ++i) {
        const int status = (i % 10 == 0) ? 503 : 200;
        buffer.Record(MakeTrace("w" + std::to_string(w) + "-" +
                                    std::to_string(i),
                                status, 100 + i));
      }
    });
  }
  std::thread reader([&buffer] {
    for (int i = 0; i < 20; ++i) {
      auto doc = graph::ParseJson(buffer.RenderJson());
      EXPECT_TRUE(doc.ok());
    }
  });
  for (std::thread& t : writers) t.join();
  reader.join();
  EXPECT_EQ(buffer.recorded(), 200);
  EXPECT_LE(buffer.size(), 16);
}

}  // namespace
}  // namespace obs
}  // namespace crossem
