// The metrics registry: instrument semantics, concurrency (exact totals
// under parallel writers — also re-run under TSan, see
// tests/CMakeLists.txt), histogram merge/percentile properties, and the
// Prometheus / JSON exporters.
#include "obs/metrics.h"

#include <thread>
#include <vector>

#include "graph/json.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace crossem {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndAdd) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
  g.Set(7.0);  // last write wins
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(HistogramTest, EmptyEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ExactAtDistributionEdges) {
  Histogram h;
  for (int64_t v : {3, 17, 900}) h.Record(v);
  // The log2 readout is approximate in the middle but exact at the
  // edges: q <= 0 is the true min, q >= 1 the true max.
  EXPECT_EQ(h.Percentile(0.0), 3);
  EXPECT_EQ(h.Percentile(-1.0), 3);
  EXPECT_EQ(h.Percentile(1.0), 900);
  EXPECT_EQ(h.Percentile(2.0), 900);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 900);
}

TEST(HistogramTest, SingleValueReportsItselfAtAnyQuantile) {
  Histogram h;
  h.Record(42);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Percentile(q), 42) << "q=" << q;
  }
}

// Property: percentiles are bounded by [min, max] and monotone in q.
TEST(HistogramTest, PercentileBoundedAndMonotone) {
  Rng rng(123);
  Histogram h;
  for (int i = 0; i < 500; ++i) h.Record(rng.UniformInt(0, 1'000'000));
  int64_t prev = h.Percentile(0.0);
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t p = h.Percentile(q);
    EXPECT_GE(p, h.min());
    EXPECT_LE(p, h.max());
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

// Property: merging B into A gives exactly the histogram of A's and B's
// observations recorded into one instrument.
TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Rng rng(7);
  Histogram a, b, combined;
  for (int i = 0; i < 300; ++i) {
    const int64_t v = rng.UniformInt(0, 100'000);
    if (i % 3 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (int bk = 0; bk < Histogram::kBuckets; ++bk) {
    EXPECT_EQ(a.bucket(bk), combined.bucket(bk)) << "bucket " << bk;
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeWithEmptySides) {
  Histogram a, empty;
  a.Record(5);
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 5);

  Histogram target;
  target.Merge(a);  // into empty
  EXPECT_EQ(target.count(), 1);
  EXPECT_EQ(target.min(), 5);
  EXPECT_EQ(target.max(), 5);
}

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("requests");
  Counter* c2 = reg.GetCounter("requests");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("other"), c1);
  EXPECT_EQ(reg.GetGauge("lr"), reg.GetGauge("lr"));
  EXPECT_EQ(reg.GetHistogram("lat"), reg.GetHistogram("lat"));
}

// Exact totals under concurrent writers resolving instruments by name —
// the lock-free hot path plus the mutex-protected resolution path
// together. Re-run under TSan via the metrics_tsan ctest entry.
TEST(MetricsRegistryTest, ConcurrentCountersAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* shared = reg.GetCounter("shared_total");
      Histogram* lat = reg.GetHistogram("latency");
      for (int i = 0; i < kIncrements; ++i) {
        shared->Increment();
        lat->Record(i % 1024);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared_total")->Value(),
            static_cast<int64_t>(kThreads) * kIncrements);
  Histogram* lat = reg.GetHistogram("latency");
  EXPECT_EQ(lat->count(), static_cast<int64_t>(kThreads) * kIncrements);
  EXPECT_EQ(lat->max(), 1023);
  EXPECT_EQ(lat->min(), 0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b_count")->Add(2);
  reg.GetCounter("a_count")->Add(1);
  reg.GetGauge("g")->Set(1.5);
  reg.GetHistogram("h")->Record(10);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a_count");
  EXPECT_EQ(snap.counters[1].name, "b_count");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(snap.histograms[0].min, 10);
  EXPECT_EQ(snap.histograms[0].max, 10);
}

// Golden exposition: the exact Prometheus 0.0.4 text for a small
// registry. Deterministic because snapshots are name-sorted.
TEST(ExportPrometheusTest, GoldenExposition) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total")->Add(3);
  reg.GetGauge("learning.rate")->Set(0.5);  // '.' sanitized to '_'
  Histogram* h = reg.GetHistogram("latency_us");
  h->Record(1);  // bucket 0 (le 1)
  h->Record(5);  // bucket 2 (le 7)
  h->Record(5);
  const std::string expected =
      "# TYPE requests_total counter\n"
      "requests_total 3\n"
      "# TYPE learning_rate gauge\n"
      "learning_rate 0.5\n"
      "# TYPE latency_us histogram\n"
      "latency_us_bucket{le=\"1\"} 1\n"
      "latency_us_bucket{le=\"3\"} 1\n"
      "latency_us_bucket{le=\"7\"} 3\n"
      "latency_us_bucket{le=\"+Inf\"} 3\n"
      "latency_us_sum 11\n"
      "latency_us_count 3\n";
  EXPECT_EQ(ExportPrometheus(reg.Snapshot()), expected);
}

// Prometheus metric names admit [a-zA-Z_:] plus digits after the first
// character. The HTTP front end mints per-tenant instrument names from
// the client-supplied x-tenant header, so the sanitizer is a security
// boundary: anything hostile must flatten to '_'.
TEST(SanitizeMetricNameTest, EscapesHostileNames) {
  EXPECT_EQ(SanitizeMetricName("requests_total"), "requests_total");
  EXPECT_EQ(SanitizeMetricName("ns:requests_total"), "ns:requests_total");
  EXPECT_EQ(SanitizeMetricName("learning.rate"), "learning_rate");
  EXPECT_EQ(SanitizeMetricName("tenant-a b/c"), "tenant_a_b_c");
  // Digits are fine anywhere but the first character.
  EXPECT_EQ(SanitizeMetricName("p99"), "p99");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_lives");
  // Exposition-format injection: newlines, quotes, braces all die.
  EXPECT_EQ(SanitizeMetricName("evil\ninjected 1"), "evil_injected_1");
  EXPECT_EQ(SanitizeMetricName("a{le=\"1\"}"), "a_le__1__");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

// The exporter sanitizes every name on the way out, so even an
// instrument registered under a hostile key cannot corrupt the
// exposition text.
TEST(ExportPrometheusTest, SanitizesTenantStyleNames) {
  MetricsRegistry reg;
  reg.GetCounter("tenant_requests_total:acme corp\n")->Add(2);
  const std::string text = ExportPrometheus(reg.Snapshot());
  EXPECT_NE(text.find("tenant_requests_total:acme_corp_ 2\n"),
            std::string::npos)
      << text;
  // No raw newline or space survived into a metric name.
  EXPECT_EQ(text.find("acme corp"), std::string::npos);
}

TEST(ExportJsonTest, RoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.GetCounter("n")->Add(7);
  reg.GetGauge("lr")->Set(0.25);
  Histogram* h = reg.GetHistogram("lat");
  for (int64_t v = 1; v <= 100; ++v) h->Record(v);

  auto doc = graph::ParseJson(ExportJson(reg.Snapshot()));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const graph::JsonValue& root = doc.value();
  const graph::JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("n"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("n")->number_value(), 7.0);
  const graph::JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("lr")->number_value(), 0.25);
  const graph::JsonValue* hist = root.Find("histograms")->Find("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number_value(), 100.0);
  EXPECT_DOUBLE_EQ(hist->Find("min")->number_value(), 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("max")->number_value(), 100.0);
  EXPECT_DOUBLE_EQ(hist->Find("mean")->number_value(), 50.5);
}

}  // namespace
}  // namespace obs
}  // namespace crossem
