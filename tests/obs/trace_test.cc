// The scoped-span tracer: enable/disable semantics, span recording with
// args across threads, and the Chrome trace_event JSON export (validated
// with the repo's own JSON parser — what Perfetto loads must parse).
#include "obs/trace.h"

#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "graph/json.h"
#include "gtest/gtest.h"
#include "obs/request_trace.h"

namespace crossem {
namespace obs {
namespace {

/// Every test starts from a clean, known trace state and leaves tracing
/// disabled for the rest of the binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    ClearTrace();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ClearTrace();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    CROSSEM_TRACE_SPAN("invisible");
    CROSSEM_TRACE_SPAN_V(span, "also_invisible");
    span.Arg("k", int64_t{1});
  }
  EXPECT_EQ(SpanCount(), 0);
  EXPECT_TRUE(CollectSpans().empty());
}

TEST_F(TraceTest, EnabledSpansRecordNameDurationArgs) {
  SetTraceEnabled(true);
  {
    CROSSEM_TRACE_SPAN_V(span, "work");
    span.Arg("items", int64_t{42})
        .Arg("ratio", 0.5)
        .Arg("label", std::string("abc"));
  }
  ASSERT_EQ(SpanCount(), 1);
  std::vector<SpanRecord> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "work");
  ASSERT_EQ(spans[0].args.size(), 3u);
  EXPECT_STREQ(spans[0].args[0].key, "items");
  EXPECT_EQ(spans[0].args[0].int_value, 42);
  EXPECT_STREQ(spans[0].args[1].key, "ratio");
  EXPECT_DOUBLE_EQ(spans[0].args[1].double_value, 0.5);
  EXPECT_STREQ(spans[0].args[2].key, "label");
  EXPECT_EQ(spans[0].args[2].string_value, "abc");
}

TEST_F(TraceTest, RuntimeToggleStopsRecording) {
  SetTraceEnabled(true);
  { CROSSEM_TRACE_SPAN("recorded"); }
  SetTraceEnabled(false);
  { CROSSEM_TRACE_SPAN("dropped"); }
  EXPECT_EQ(SpanCount(), 1);
}

TEST_F(TraceTest, NestedSpansAllRecorded) {
  SetTraceEnabled(true);
  {
    CROSSEM_TRACE_SPAN("outer");
    {
      CROSSEM_TRACE_SPAN("inner");
    }
  }
  EXPECT_EQ(SpanCount(), 2);
}

TEST_F(TraceTest, ThreadsGetDistinctTidsAndBuffersSurviveThreadExit) {
  SetTraceEnabled(true);
  { CROSSEM_TRACE_SPAN("main_thread"); }
  std::thread t1([] { CROSSEM_TRACE_SPAN("worker_a"); });
  std::thread t2([] { CROSSEM_TRACE_SPAN("worker_b"); });
  t1.join();
  t2.join();
  // The worker threads are gone; their spans must still be collectable.
  std::vector<SpanRecord> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 3u);
  std::set<uint64_t> tids;
  for (const SpanRecord& s : spans) tids.insert(s.thread_id);
  EXPECT_EQ(tids.size(), 3u);
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  SetTraceEnabled(true);
  {
    CROSSEM_TRACE_SPAN_V(span, "gemm");
    span.Arg("m", int64_t{8}).Arg("note", std::string("q\"uote"));
  }
  auto doc = graph::ParseJson(ChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const graph::JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // One process_name metadata event plus the span itself.
  ASSERT_EQ(events->array_items().size(), 2u);
  const graph::JsonValue& meta = events->array_items()[0];
  EXPECT_EQ(meta.Find("ph")->string_value(), "M");
  EXPECT_EQ(meta.Find("name")->string_value(), "process_name");
  EXPECT_EQ(meta.Find("args")->Find("name")->string_value(), "crossem");
  const graph::JsonValue& ev = events->array_items()[1];
  EXPECT_EQ(ev.Find("ph")->string_value(), "X");
  EXPECT_EQ(ev.Find("name")->string_value(), "gemm");
  EXPECT_DOUBLE_EQ(ev.Find("pid")->number_value(), 1.0);
  ASSERT_NE(ev.Find("tid"), nullptr);
  ASSERT_NE(ev.Find("ts"), nullptr);
  EXPECT_GE(ev.Find("dur")->number_value(), 0.0);
  const graph::JsonValue* args = ev.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("m")->number_value(), 8.0);
  EXPECT_EQ(args->Find("note")->string_value(), "q\"uote");
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  SetTraceEnabled(true);
  { CROSSEM_TRACE_SPAN("epoch"); }
  const std::string path =
      std::string(::testing::TempDir()) + "/trace_test_out.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = graph::ParseJson(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // [0] is the process_name metadata event; the span follows.
  EXPECT_EQ(
      doc.value().Find("traceEvents")->array_items()[1].Find("name")
          ->string_value(),
      "epoch");
}

TEST_F(TraceTest, NamedThreadsEmitThreadNameMetadata) {
  SetTraceEnabled(true);
  std::thread worker([] {
    SetThreadName("unit-worker");
    CROSSEM_TRACE_SPAN("named_work");
  });
  worker.join();
  const std::string json = ChromeTraceJson();
  auto doc = graph::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  bool saw_thread_name = false;
  for (const graph::JsonValue& ev :
       doc.value().Find("traceEvents")->array_items()) {
    if (ev.Find("ph")->string_value() == "M" &&
        ev.Find("name")->string_value() == "thread_name" &&
        ev.Find("args")->Find("name")->string_value() == "unit-worker") {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_thread_name) << json;
}

TEST_F(TraceTest, AppendSpanRecordCarriesTraceIds) {
  SetTraceEnabled(true);
  SpanRecord record;
  record.name = "external";
  record.start_ns = RequestNowNs();
  record.duration_ns = 500;
  record.trace_hi = 0x0123456789abcdefULL;
  record.trace_lo = 0xfedcba9876543210ULL;
  record.span_id = 0x1111222233334444ULL;
  record.parent_span_id = 0x5555666677778888ULL;
  AppendSpanRecord(record);
  auto doc = graph::ParseJson(ChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const graph::JsonValue* found = nullptr;
  for (const graph::JsonValue& ev :
       doc.value().Find("traceEvents")->array_items()) {
    if (ev.Find("name")->string_value() == "external") found = &ev;
  }
  ASSERT_NE(found, nullptr);
  const graph::JsonValue* args = found->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("trace_id")->string_value(),
            "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(args->Find("span_id")->string_value(), "1111222233334444");
  EXPECT_EQ(args->Find("parent_span_id")->string_value(),
            "5555666677778888");
}

TEST_F(TraceTest, ClearTraceDropsEverything) {
  SetTraceEnabled(true);
  { CROSSEM_TRACE_SPAN("gone"); }
  ASSERT_EQ(SpanCount(), 1);
  ClearTrace();
  EXPECT_EQ(SpanCount(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace crossem
