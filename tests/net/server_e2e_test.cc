// End-to-end drill for the HTTP front end (ISSUE acceptance): a real
// epoll server + MatchApp over a real (small) engine, driven through
// real sockets with the loadgen's HttpClient and the open-loop Poisson
// generator. Asserts the full rejection contract on the wire, bitwise
// identity between HTTP answers and in-process Match() calls, tenant
// quota isolation, and the hot-swap invariant: a mid-drill
// /admin/snapshot rollout completes with zero failed queries.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "clip/clip.h"
#include "data/dataset.h"
#include "graph/json.h"
#include "gtest/gtest.h"
#include "net/http.h"
#include "net/loadgen.h"
#include "net/match_app.h"
#include "net/server.h"
#include "obs/request_trace.h"
#include "obs/timeseries.h"
#include "obs/tracez.h"
#include "serve/index.h"
#include "serve/snapshot.h"
#include "text/tokenizer.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace crossem {
namespace net {
namespace {

class ServerE2eFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc = data::CubLikeConfig(0.4);
    ds_ = new data::CrossModalDataset(data::BuildDataset(dc));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(5);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);
    core::CrossEmOptions options;
    options.prompt_mode = core::PromptMode::kHard;
    matcher_ = new core::CrossEm(model_, &ds_->graph, tokenizer_, options);
    embeddings_ = new Tensor(
        matcher_->EncodeImages(ds_->StackImages(ds_->TestImageIndices())));
  }

  static void TearDownTestSuite() {
    delete embeddings_;
    delete matcher_;
    delete tokenizer_;
    delete model_;
    delete ds_;
  }

  static std::unique_ptr<serve::EmbeddingIndex> MakeGoodIndex() {
    std::vector<std::string> ids;
    for (int64_t i = 0; i < embeddings_->size(0); ++i) {
      ids.push_back("img" + std::to_string(i));
    }
    auto index = std::make_unique<serve::FlatIndex>();
    EXPECT_TRUE(index->Add(*embeddings_, ids).ok());
    index->set_model_fingerprint(matcher_->EncoderFingerprint());
    return index;
  }

  static graph::VertexId Vertex(size_t i) {
    return ds_->entities[i % ds_->entities.size()];
  }
  static std::string EntityLabel(size_t i) {
    return ds_->graph.VertexLabel(Vertex(i));
  }

  static serve::EngineOptions FastOptions(int64_t shards) {
    serve::EngineOptions eo;
    eo.shards = shards;
    eo.base.max_wait_micros = 200;
    return eo;
  }

  /// The full stack a test boots: manager (already swapped unless told
  /// otherwise), app, server on an ephemeral loopback port.
  struct Stack {
    std::unique_ptr<serve::SnapshotManager> manager;
    std::unique_ptr<MatchApp> app;
    std::unique_ptr<HttpServer> server;

    ~Stack() {
      if (server != nullptr) server->Stop();
      if (manager != nullptr) manager->Shutdown();
    }
  };

  static std::unique_ptr<Stack> BootStack(MatchAppOptions app_options,
                                          int64_t shards, bool swap_index) {
    return BootStack(std::move(app_options), FastOptions(shards), swap_index);
  }

  static std::unique_ptr<Stack> BootStack(MatchAppOptions app_options,
                                          const serve::EngineOptions& eo,
                                          bool swap_index) {
    auto s = std::make_unique<Stack>();
    s->manager = std::make_unique<serve::SnapshotManager>(matcher_, eo);
    if (swap_index) {
      EXPECT_TRUE(s->manager->SwapIndex(MakeGoodIndex(), "boot").ok());
    }
    s->app = std::make_unique<MatchApp>(&ds_->graph, s->manager.get(),
                                        std::move(app_options));
    HttpServerOptions server_options;
    server_options.port = 0;
    server_options.workers = 4;
    MatchApp* app = s->app.get();
    s->server = std::make_unique<HttpServer>(
        server_options,
        [app](const HttpRequest& request) { return app->Handle(request); });
    EXPECT_TRUE(s->server->Start().ok());
    return s;
  }

  /// Unlimited-admission options (tests that are not about quotas).
  static MatchAppOptions OpenAdmission() {
    MatchAppOptions options;
    options.admission.max_inflight = 256;
    options.admission.tenant_rate = 1e6;
    options.admission.tenant_burst = 1e6;
    return options;
  }

  static Result<HttpResponse> RoundTrip(
      HttpClient& client, const std::string& method,
      const std::string& target, const std::string& body,
      std::vector<std::pair<std::string, std::string>> extra_headers = {}) {
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    request.headers = {{"Host", "127.0.0.1"}};
    for (auto& h : extra_headers) request.headers.push_back(std::move(h));
    if (!body.empty()) {
      request.headers.emplace_back("Content-Type", "application/json");
    }
    request.body = body;
    return client.RoundTrip(request, /*timeout_micros=*/10 * 1000 * 1000);
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static core::CrossEm* matcher_;
  static Tensor* embeddings_;
};

data::CrossModalDataset* ServerE2eFixture::ds_ = nullptr;
clip::ClipModel* ServerE2eFixture::model_ = nullptr;
text::Tokenizer* ServerE2eFixture::tokenizer_ = nullptr;
core::CrossEm* ServerE2eFixture::matcher_ = nullptr;
Tensor* ServerE2eFixture::embeddings_ = nullptr;

TEST_F(ServerE2eFixture, HealthMetricsAndRouting) {
  auto stack = BootStack(OpenAdmission(), 1, /*swap_index=*/true);
  HttpClient client("127.0.0.1", stack->server->port());

  auto health = RoundTrip(client, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 200);
  EXPECT_NE(health.value().body.find("\"snapshot_version\":1"),
            std::string::npos)
      << health.value().body;

  auto metrics = RoundTrip(client, "GET", "/metrics", "");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics.value().status, 200);
  ASSERT_NE(metrics.value().FindHeader("content-type"), nullptr);
  EXPECT_NE(metrics.value().FindHeader("content-type")->find("text/plain"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("crossem_http_requests_total"),
            std::string::npos);

  auto missing = RoundTrip(client, "GET", "/nope", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  auto wrong_method = RoundTrip(client, "GET", "/v1/match", "");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);

  auto info = RoundTrip(client, "GET", "/admin/snapshot", "");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().status, 200);
  EXPECT_NE(info.value().body.find("\"source\":\"boot\""), std::string::npos)
      << info.value().body;
}

TEST_F(ServerE2eFixture, NoSnapshotAnswers503) {
  auto stack = BootStack(OpenAdmission(), 1, /*swap_index=*/false);
  HttpClient client("127.0.0.1", stack->server->port());
  auto health = RoundTrip(client, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 503);
  auto match = RoundTrip(client, "POST", "/v1/match",
                         "{\"entity\":\"" + EntityLabel(0) + "\"}");
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match.value().status, 503);
  EXPECT_NE(match.value().body.find("no_snapshot"), std::string::npos);
}

TEST_F(ServerE2eFixture, MalformedRequestsGetPreciseErrors) {
  auto stack = BootStack(OpenAdmission(), 1, /*swap_index=*/true);
  HttpClient client("127.0.0.1", stack->server->port());

  auto bad_json = RoundTrip(client, "POST", "/v1/match", "{nope");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json.value().status, 400);
  EXPECT_NE(bad_json.value().body.find("bad_json"), std::string::npos);

  auto no_entity = RoundTrip(client, "POST", "/v1/match", "{\"k\":3}");
  ASSERT_TRUE(no_entity.ok());
  EXPECT_EQ(no_entity.value().status, 400);

  auto bad_k = RoundTrip(client, "POST", "/v1/match",
                         "{\"entity\":\"" + EntityLabel(0) + "\",\"k\":0}");
  ASSERT_TRUE(bad_k.ok());
  EXPECT_EQ(bad_k.value().status, 400);

  auto unknown = RoundTrip(client, "POST", "/v1/match",
                           "{\"entity\":\"no such label anywhere\"}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().status, 404);
  EXPECT_NE(unknown.value().body.find("unknown_entity"), std::string::npos);

  auto bad_deadline = RoundTrip(
      client, "POST", "/v1/match",
      "{\"entity\":\"" + EntityLabel(0) + "\"}",
      {{"x-deadline-ms", "soon"}});
  ASSERT_TRUE(bad_deadline.ok());
  EXPECT_EQ(bad_deadline.value().status, 400);
  EXPECT_NE(bad_deadline.value().body.find("bad_deadline"),
            std::string::npos);
}

// The wire answer must be byte-for-byte reconstructible to the
// in-process answer: %.9g round-trips binary32 exactly, so every
// similarity and probability parsed back from the JSON must equal the
// engine's floats bit for bit.
TEST_F(ServerE2eFixture, HttpAnswersAreBitwiseIdenticalToInProcess) {
  auto stack = BootStack(OpenAdmission(), 2, /*swap_index=*/true);
  HttpClient client("127.0.0.1", stack->server->port());

  for (size_t i = 0; i < 6; ++i) {
    const std::string label = EntityLabel(i);
    auto http = RoundTrip(client, "POST", "/v1/match",
                          "{\"entity\":\"" + label + "\",\"k\":5}");
    ASSERT_TRUE(http.ok()) << http.status().ToString();
    ASSERT_EQ(http.value().status, 200) << http.value().body;

    auto doc = graph::ParseJson(http.value().body);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const graph::JsonValue& root = doc.value();
    EXPECT_EQ(root.Find("entity")->string_value(), label);
    EXPECT_EQ(root.Find("coverage")->number_value(), 1.0);
    EXPECT_FALSE(root.Find("degraded")->bool_value());

    serve::MatchRequest request;
    request.vertex = Vertex(i);
    request.k = 5;
    serve::SnapshotLease lease = stack->manager->Acquire();
    ASSERT_TRUE(lease);
    auto direct = lease->Match(request);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    const std::vector<serve::RankedMatch>& expected = direct.value().matches;

    const graph::JsonValue* matches = root.Find("matches");
    ASSERT_NE(matches, nullptr);
    ASSERT_TRUE(matches->is_array());
    ASSERT_EQ(matches->array_items().size(), expected.size());
    for (size_t m = 0; m < expected.size(); ++m) {
      const graph::JsonValue& item = matches->array_items()[m];
      EXPECT_EQ(item.Find("image_id")->string_value(), expected[m].image_id);
      EXPECT_EQ(static_cast<int64_t>(item.Find("image")->number_value()),
                expected[m].image);
      // The bitwise check: parse the double, narrow to float, compare
      // exactly — any formatting loss would flip low bits.
      EXPECT_EQ(static_cast<float>(item.Find("similarity")->number_value()),
                expected[m].similarity)
          << "entity " << label << " match " << m;
      EXPECT_EQ(static_cast<float>(item.Find("probability")->number_value()),
                expected[m].probability)
          << "entity " << label << " match " << m;
    }
  }
}

TEST_F(ServerE2eFixture, TenantQuotaExhaustionIsIsolated) {
  MatchAppOptions options;
  options.admission.max_inflight = 256;
  options.admission.tenant_rate = 0.5;  // one token, refill far away
  options.admission.tenant_burst = 1.0;
  auto stack = BootStack(std::move(options), 1, /*swap_index=*/true);
  HttpClient client("127.0.0.1", stack->server->port());
  const std::string body = "{\"entity\":\"" + EntityLabel(0) + "\",\"k\":2}";

  // Tenant A's burst is one request; the second must bounce with the
  // full 429 contract on the wire.
  auto first = RoundTrip(client, "POST", "/v1/match", body,
                         {{"x-tenant", "tenant-a"}});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status, 200) << first.value().body;

  auto second = RoundTrip(client, "POST", "/v1/match", body,
                          {{"x-tenant", "tenant-a"}});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().status, 429) << second.value().body;
  EXPECT_NE(second.value().body.find("tenant_quota_exhausted"),
            std::string::npos)
      << second.value().body;
  ASSERT_NE(second.value().FindHeader("retry-after"), nullptr);
  EXPECT_GE(std::stoll(*second.value().FindHeader("retry-after")), 1);
  ASSERT_NE(second.value().FindHeader("x-retry-after-us"), nullptr);
  EXPECT_GT(std::stoll(*second.value().FindHeader("x-retry-after-us")), 0);

  // With a deadline, the advertised retry never exceeds the budget.
  auto deadlined = RoundTrip(client, "POST", "/v1/match", body,
                             {{"x-tenant", "tenant-a"},
                              {"x-deadline-ms", "40"}});
  ASSERT_TRUE(deadlined.ok());
  EXPECT_EQ(deadlined.value().status, 429);
  ASSERT_NE(deadlined.value().FindHeader("x-retry-after-us"), nullptr);
  EXPECT_LE(std::stoll(*deadlined.value().FindHeader("x-retry-after-us")),
            40000);

  // Tenant B is untouched by A's exhaustion.
  auto other = RoundTrip(client, "POST", "/v1/match", body,
                         {{"x-tenant", "tenant-b"}});
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_EQ(other.value().status, 200) << other.value().body;
}

// The acceptance drill: an open-loop Poisson run with a hot snapshot
// swap landing mid-drill. Zero transport errors, zero 5xx, every
// request answered — the rollout is invisible to clients.
TEST_F(ServerE2eFixture, PoissonDrillSurvivesMidDrillHotSwap) {
  auto stack = BootStack(OpenAdmission(), 2, /*swap_index=*/true);

  const std::string rollout =
      ::testing::TempDir() + "e2e_rollout.cemckpt";
  ASSERT_TRUE(MakeGoodIndex()->Save(rollout).ok());

  std::vector<std::string> entities;
  for (size_t i = 0; i < ds_->entities.size(); ++i) {
    entities.push_back(EntityLabel(i));
  }

  LoadGenOptions lg;
  lg.port = stack->server->port();
  lg.entities = entities;
  lg.qps = 25.0;
  lg.duration_micros = 1500 * 1000;
  lg.connections = 2;
  lg.tenant = "drill";
  lg.k = 5;
  lg.seed = 7;
  lg.name = "e2e";

  Result<LoadGenReport> report = Status::Internal("not run");
  std::thread driver([&]() { report = RunLoadGen(lg); });

  // Land the rollout in the middle of the drill.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  {
    HttpClient admin("127.0.0.1", stack->server->port());
    auto swap = RoundTrip(admin, "POST", "/admin/snapshot",
                          "{\"index\":" + std::string("\"") + rollout +
                              "\"}");
    ASSERT_TRUE(swap.ok()) << swap.status().ToString();
    EXPECT_EQ(swap.value().status, 200) << swap.value().body;
    EXPECT_NE(swap.value().body.find("\"version\":2"), std::string::npos)
        << swap.value().body;
  }
  driver.join();
  std::remove(rollout.c_str());

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadGenReport& r = report.value();
  EXPECT_GT(r.sent, 0);
  // The hot-swap invariant on the wire: nothing dropped, nothing 5xx,
  // every arrival answered 200 (coverage stayed full throughout).
  EXPECT_EQ(r.transport_errors, 0);
  EXPECT_EQ(r.completed, r.sent);
  EXPECT_EQ(r.status_5xx, 0);
  EXPECT_EQ(r.status_429, 0);
  EXPECT_EQ(r.status_200, r.sent);
  EXPECT_GT(r.latency_p50_us, 0);
  EXPECT_GE(r.latency_p99_us, r.latency_p50_us);

  // The rollout really happened while the drill ran.
  EXPECT_EQ(stack->manager->version(), 2);
  EXPECT_EQ(stack->manager->swaps(), 2);
}

TEST_F(ServerE2eFixture, MetricsServeJsonOnRequest) {
  auto stack = BootStack(OpenAdmission(), 1, /*swap_index=*/true);
  HttpClient client("127.0.0.1", stack->server->port());

  for (const std::string target :
       {std::string("/metrics?format=json"), std::string("/metrics")}) {
    const bool json = target.find("json") != std::string::npos;
    auto response =
        json ? RoundTrip(client, "GET", target, "")
             : RoundTrip(client, "GET", target, "",
                         {{"Accept", "application/json"}});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
    const std::string* ct = response.value().FindHeader("content-type");
    ASSERT_NE(ct, nullptr);
    EXPECT_NE(ct->find("application/json"), std::string::npos) << target;
    auto doc = graph::ParseJson(response.value().body);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_NE(doc.value().Find("counters"), nullptr);
  }
}

TEST_F(ServerE2eFixture, MetricsHistoryRequiresARecorder) {
  auto stack = BootStack(OpenAdmission(), 1, /*swap_index=*/true);
  HttpClient client("127.0.0.1", stack->server->port());

  // No recorder attached: the route is 404, not a crash.
  auto missing = RoundTrip(client, "GET", "/metrics/history", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  EXPECT_NE(missing.value().body.find("recorder_disabled"),
            std::string::npos);

  obs::TimeSeriesOptions ts_options;
  ts_options.interval_micros = 1000;
  obs::TimeSeriesRecorder recorder(&obs::MetricsRegistry::Default(),
                                   ts_options);
  stack->app->set_recorder(&recorder);
  recorder.SampleOnce();
  recorder.SampleOnce();

  auto history = RoundTrip(client, "GET", "/metrics/history", "");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history.value().status, 200);
  auto doc = graph::ParseJson(history.value().body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().Find("samples")->number_value(), 2.0);
  EXPECT_NE(doc.value().Find("series"), nullptr);
  stack->app->set_recorder(nullptr);
}

// The tentpole acceptance drill: a /v1/match carrying x-request-id must
// yield ONE connected span tree — ingress root, admission, service,
// gather, and a shard_attempt per attempt on every shard including a
// forced hedge — retrievable from /debug/tracez, with the identity
// echoed on the response.
TEST_F(ServerE2eFixture, RequestTraceConnectsEveryShardAttemptWithHedge) {
  fault::Clear();
  obs::TracezBuffer::Default().Clear();

  serve::EngineOptions eo = FastOptions(2);
  // Keep the fixed 2ms hedge delay: a huge min_samples stops observed
  // latencies from adapting it away mid-test.
  eo.resilience.hedge_delay_micros = 2000;
  eo.resilience.hedge_min_samples = int64_t{1} << 40;
  auto stack = BootStack(OpenAdmission(), eo, /*swap_index=*/true);

  // First search on shard 1 sleeps 30ms >> the 2ms hedge delay, so the
  // coordinator must launch a hedge attempt for that shard.
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kDelay;
  spec.delay_ms = 30;
  spec.shard = 1;
  spec.nth = 1;
  fault::ArmShardFault(spec);

  HttpClient client("127.0.0.1", stack->server->port());
  auto response =
      RoundTrip(client, "POST", "/v1/match",
                "{\"entity\":\"" + EntityLabel(0) + "\",\"k\":3}",
                {{"x-request-id", "e2e-trace-1"}});
  fault::Clear();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200) << response.value().body;

  // Identity echoed: x-request-id verbatim, traceparent well-formed.
  const std::string* rid = response.value().FindHeader("x-request-id");
  ASSERT_NE(rid, nullptr);
  EXPECT_EQ(*rid, "e2e-trace-1");
  const std::string* traceparent =
      response.value().FindHeader("traceparent");
  ASSERT_NE(traceparent, nullptr);
  obs::TraceId trace_id;
  uint64_t root_span = 0;
  ASSERT_TRUE(obs::ParseTraceparent(*traceparent, &trace_id, &root_span));

  // The trace is retrievable from /debug/tracez over the wire.
  auto tracez = RoundTrip(client, "GET", "/debug/tracez?format=json", "");
  ASSERT_TRUE(tracez.ok());
  ASSERT_EQ(tracez.value().status, 200);
  auto doc = graph::ParseJson(tracez.value().body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const graph::JsonValue* traces = doc.value().Find("traces");
  ASSERT_NE(traces, nullptr);
  const graph::JsonValue* mine = nullptr;
  for (const graph::JsonValue& t : traces->array_items()) {
    if (t.Find("request_id")->string_value() == "e2e-trace-1") mine = &t;
  }
  ASSERT_NE(mine, nullptr) << tracez.value().body;
  EXPECT_EQ(mine->Find("trace_id")->string_value(),
            obs::TraceIdHex(trace_id));

  // Walk the span tree: ids must form one connected tree rooted at the
  // "request" span, and the shard attempts must cover both shards with
  // at least one hedge.
  const graph::JsonValue* spans = mine->Find("spans");
  ASSERT_NE(spans, nullptr);
  std::set<std::string> span_ids;
  std::set<std::string> names;
  std::string root_span_id;
  for (const graph::JsonValue& s : spans->array_items()) {
    span_ids.insert(s.Find("span_id")->string_value());
    names.insert(s.Find("name")->string_value());
    if (s.Find("name")->string_value() == "request") {
      root_span_id = s.Find("span_id")->string_value();
    }
  }
  ASSERT_FALSE(root_span_id.empty());
  EXPECT_EQ(root_span_id, obs::SpanIdHex(root_span));
  for (const std::string required :
       {"request", "admission", "service", "gather", "shard_attempt",
        "shard_search"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }
  std::set<int64_t> attempt_shards;
  bool saw_hedge = false;
  for (const graph::JsonValue& s : spans->array_items()) {
    const std::string name = s.Find("name")->string_value();
    const std::string parent = s.Find("parent_span_id")->string_value();
    if (name == "request") {
      EXPECT_EQ(parent, obs::SpanIdHex(0));  // the one and only root
    } else {
      // Connectivity: every non-root span's parent is a recorded span.
      EXPECT_TRUE(span_ids.count(parent))
          << name << " parent " << parent << " not in the tree";
    }
    if (name == "shard_attempt") {
      const graph::JsonValue* args = s.Find("args");
      ASSERT_NE(args, nullptr);
      attempt_shards.insert(
          static_cast<int64_t>(args->Find("shard")->number_value()));
      if (args->Find("hedge")->number_value() == 1.0) saw_hedge = true;
    }
  }
  EXPECT_TRUE(attempt_shards.count(0)) << "no attempt span for shard 0";
  EXPECT_TRUE(attempt_shards.count(1)) << "no attempt span for shard 1";
  EXPECT_TRUE(saw_hedge) << "forced 30ms delay produced no hedge span";

  // The HTML view renders without leaking markup.
  auto html = RoundTrip(client, "GET", "/debug/tracez", "");
  ASSERT_TRUE(html.ok());
  EXPECT_EQ(html.value().status, 200);
  EXPECT_NE(html.value().body.find("e2e-trace-1"), std::string::npos);

  obs::TracezBuffer::Default().Clear();
}

// Untraced requests (no trace headers, trace_all_requests off) must not
// land in tracez and must not grow response headers.
TEST_F(ServerE2eFixture, UntracedRequestsStayOffTheTracePath) {
  obs::TracezBuffer::Default().Clear();
  auto stack = BootStack(OpenAdmission(), 1, /*swap_index=*/true);
  HttpClient client("127.0.0.1", stack->server->port());
  auto response =
      RoundTrip(client, "POST", "/v1/match",
                "{\"entity\":\"" + EntityLabel(0) + "\",\"k\":3}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().FindHeader("x-request-id"), nullptr);
  EXPECT_EQ(response.value().FindHeader("traceparent"), nullptr);
  EXPECT_EQ(obs::TracezBuffer::Default().size(), 0);
}

}  // namespace
}  // namespace net
}  // namespace crossem
