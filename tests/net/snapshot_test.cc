// SnapshotManager hot-swap protocol: versioning, the encoder-
// fingerprint handshake (in-process and through CEMCKPT2 files), lease
// semantics around the empty/shut-down states, and the rollout
// invariant — zero dropped queries while swaps land under concurrent
// load. The ctest TSan re-run exercises the same drill with the race
// detector watching the RCU seam.
#include "serve/snapshot.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clip/clip.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "serve/index.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace crossem {
namespace serve {
namespace {

/// Same small-world fixture as tests/serve/service_test.cc: one
/// untuned model + its image embeddings, encoded once per suite.
class SnapshotFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc = data::CubLikeConfig(0.4);
    ds_ = new data::CrossModalDataset(data::BuildDataset(dc));
    clip::ClipConfig cc;
    cc.vocab_size = ds_->vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = ds_->world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(5);
    model_ = new clip::ClipModel(cc, &rng);
    tokenizer_ = new text::Tokenizer(&ds_->vocab, cc.text_context);
    core::CrossEmOptions options;
    options.prompt_mode = core::PromptMode::kHard;
    matcher_ = new core::CrossEm(model_, &ds_->graph, tokenizer_, options);
    embeddings_ = new Tensor(
        matcher_->EncodeImages(ds_->StackImages(ds_->TestImageIndices())));
  }

  static void TearDownTestSuite() {
    delete embeddings_;
    delete matcher_;
    delete tokenizer_;
    delete model_;
    delete ds_;
  }

  /// A fresh index over the fixture embeddings, correctly
  /// fingerprinted unless the test wants a mismatch.
  static std::unique_ptr<EmbeddingIndex> MakeIndex(uint32_t fingerprint) {
    std::vector<std::string> ids;
    for (int64_t i = 0; i < embeddings_->size(0); ++i) {
      ids.push_back("img" + std::to_string(i));
    }
    auto index = std::make_unique<FlatIndex>();
    EXPECT_TRUE(index->Add(*embeddings_, ids).ok());
    index->set_model_fingerprint(fingerprint);
    return index;
  }

  static std::unique_ptr<EmbeddingIndex> MakeGoodIndex() {
    return MakeIndex(matcher_->EncoderFingerprint());
  }

  static graph::VertexId Vertex(size_t i) {
    return ds_->entities[i % ds_->entities.size()];
  }

  static EngineOptions FastOptions(int64_t shards) {
    EngineOptions eo;
    eo.shards = shards;
    eo.base.max_wait_micros = 200;  // low-latency batching for tests
    return eo;
  }

  static data::CrossModalDataset* ds_;
  static clip::ClipModel* model_;
  static text::Tokenizer* tokenizer_;
  static core::CrossEm* matcher_;
  static Tensor* embeddings_;
};

data::CrossModalDataset* SnapshotFixture::ds_ = nullptr;
clip::ClipModel* SnapshotFixture::model_ = nullptr;
text::Tokenizer* SnapshotFixture::tokenizer_ = nullptr;
core::CrossEm* SnapshotFixture::matcher_ = nullptr;
Tensor* SnapshotFixture::embeddings_ = nullptr;

TEST_F(SnapshotFixture, EmptyManagerHandsOutNoLease) {
  SnapshotManager manager(matcher_, FastOptions(1));
  EXPECT_EQ(manager.version(), 0);
  EXPECT_EQ(manager.swaps(), 0);
  SnapshotLease lease = manager.Acquire();
  EXPECT_FALSE(lease);  // callers answer 503
  manager.Shutdown();
}

TEST_F(SnapshotFixture, SwapServesAndVersions) {
  SnapshotManager manager(matcher_, FastOptions(1));
  ASSERT_TRUE(manager.SwapIndex(MakeGoodIndex(), "boot").ok());
  EXPECT_EQ(manager.version(), 1);
  EXPECT_EQ(manager.swaps(), 1);

  SnapshotLease lease = manager.Acquire();
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->version(), 1);
  EXPECT_EQ(lease->source(), "boot");
  EXPECT_EQ(lease->rows(), embeddings_->size(0));
  EXPECT_EQ(lease->fingerprint(), matcher_->EncoderFingerprint());
  EXPECT_FALSE(lease->sharded());

  MatchRequest request;
  request.vertex = Vertex(0);
  request.k = 3;
  auto result = lease->Match(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().matches.size(), 3u);
  lease.Reset();
  manager.Shutdown();
}

TEST_F(SnapshotFixture, ShardedEngineBehindTheSameSurface) {
  SnapshotManager manager(matcher_, FastOptions(2));
  ASSERT_TRUE(manager.SwapIndex(MakeGoodIndex(), "boot").ok());
  SnapshotLease lease = manager.Acquire();
  ASSERT_TRUE(lease);
  EXPECT_TRUE(lease->sharded());
  EXPECT_EQ(lease->shards(), 2);
  MatchRequest request;
  request.vertex = Vertex(1);
  request.k = 5;
  auto result = lease->Match(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().coverage, 1.0);
  EXPECT_FALSE(result.value().degraded);
  lease.Reset();
  manager.Shutdown();
}

TEST_F(SnapshotFixture, FingerprintMismatchIsRejectedAndCurrentKeepsServing) {
  SnapshotManager manager(matcher_, FastOptions(1));
  ASSERT_TRUE(manager.SwapIndex(MakeGoodIndex(), "v1").ok());

  Status st = manager.SwapIndex(
      MakeIndex(matcher_->EncoderFingerprint() + 1), "retuned");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();

  // The failed rollout left the live snapshot untouched.
  EXPECT_EQ(manager.version(), 1);
  EXPECT_EQ(manager.swaps(), 1);
  SnapshotLease lease = manager.Acquire();
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->source(), "v1");
  lease.Reset();
  manager.Shutdown();
}

TEST_F(SnapshotFixture, LoadAndSwapRunsTheFileHandshake) {
  const std::string good = ::testing::TempDir() + "snapshot_good.cemckpt";
  const std::string bad = ::testing::TempDir() + "snapshot_bad.cemckpt";
  ASSERT_TRUE(MakeGoodIndex()->Save(good).ok());
  ASSERT_TRUE(
      MakeIndex(matcher_->EncoderFingerprint() ^ 0xdeadbeef)->Save(bad).ok());

  SnapshotManager manager(matcher_, FastOptions(1));
  ASSERT_TRUE(manager.LoadAndSwap(good).ok());
  EXPECT_EQ(manager.version(), 1);

  // A file built by a different model is refused pre-swap.
  Status st = manager.LoadAndSwap(bad);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("fingerprint"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(manager.version(), 1);

  // Missing file: same no-op guarantee.
  EXPECT_FALSE(manager.LoadAndSwap(good + ".does-not-exist").ok());
  EXPECT_EQ(manager.version(), 1);

  SnapshotLease lease = manager.Acquire();
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->source(), good);
  lease.Reset();
  manager.Shutdown();
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

// The rollout invariant: swaps landing mid-load never drop a query.
// Client threads hammer Match() through leases while the main thread
// rolls out new snapshot versions; every single query must succeed.
TEST_F(SnapshotFixture, HotSwapUnderLoadDropsNothing) {
  SnapshotManager manager(matcher_, FastOptions(1));
  ASSERT_TRUE(manager.SwapIndex(MakeGoodIndex(), "v1").ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> max_version_seen{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t]() {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotLease lease = manager.Acquire();
        if (!lease) {
          // Acquire is only ever empty before the first swap or after
          // Shutdown — neither happens during this drill.
          failures.fetch_add(1);
          continue;
        }
        int64_t v = lease->version();
        int64_t prev = max_version_seen.load(std::memory_order_relaxed);
        while (v > prev &&
               !max_version_seen.compare_exchange_weak(prev, v)) {
        }
        MatchRequest request;
        request.vertex = Vertex(i++);
        request.k = 3;
        auto result = lease->Match(request);
        queries.fetch_add(1);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }

  // Roll out three new versions while the clients run.
  const int kSwaps = 3;
  for (int s = 0; s < kSwaps; ++s) {
    std::string source = "v";  // two-step append: gcc-12 -Wrestrict FP
    source += std::to_string(s + 2);
    ASSERT_TRUE(manager.SwapIndex(MakeGoodIndex(), std::move(source)).ok());
  }
  // Let the clients run a little on the final version.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_GT(queries.load(), 0);
  EXPECT_EQ(failures.load(), 0);  // zero dropped queries across swaps
  EXPECT_EQ(manager.version(), 1 + kSwaps);
  EXPECT_EQ(max_version_seen.load(), manager.version());
  manager.Shutdown();
}

TEST_F(SnapshotFixture, ShutdownStopsLeasesAndIsIdempotent) {
  SnapshotManager manager(matcher_, FastOptions(1));
  ASSERT_TRUE(manager.SwapIndex(MakeGoodIndex(), "v1").ok());
  manager.Shutdown();
  SnapshotLease lease = manager.Acquire();
  EXPECT_FALSE(lease);
  // A swap after shutdown is refused; shutdown again is a no-op.
  EXPECT_FALSE(manager.SwapIndex(MakeGoodIndex(), "late").ok());
  manager.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace crossem
