// Admission control: deterministic token-bucket refill via injected
// time points, tenant isolation (an exhausted tenant never consumes the
// global limit or another tenant's tokens), the global concurrency
// limiter with RAII tickets, the overflow bucket beyond max_tenants,
// the deadline clamp on every Retry-After hint, and x-deadline-ms
// parsing.
#include "net/admission.h"

#include <chrono>
#include <vector>

#include "gtest/gtest.h"
#include "util/status.h"

namespace crossem {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point T0() {
  // An arbitrary fixed epoch; only differences matter.
  return Clock::time_point(std::chrono::seconds(1000));
}

Clock::time_point After(int64_t micros) {
  return T0() + std::chrono::microseconds(micros);
}

TEST(TokenBucketTest, StartsFullThenRefusesWithRefillHint) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/2.0);
  int64_t retry = 0;
  EXPECT_TRUE(bucket.TryAcquire(T0(), &retry));
  EXPECT_TRUE(bucket.TryAcquire(T0(), &retry));
  // Empty: at 10 tokens/s the next full token is 100ms away (the hint
  // is ceil'd over double math, so allow one microsecond of slack).
  EXPECT_FALSE(bucket.TryAcquire(T0(), &retry));
  EXPECT_GE(retry, 100000);
  EXPECT_LE(retry, 100001);
}

TEST(TokenBucketTest, RefillsDeterministicallyWithInjectedTime) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/2.0);
  int64_t retry = 0;
  EXPECT_TRUE(bucket.TryAcquire(T0(), &retry));
  EXPECT_TRUE(bucket.TryAcquire(T0(), &retry));
  EXPECT_FALSE(bucket.TryAcquire(T0(), &retry));
  // 50ms -> half a token: still refused, hint shrinks to the remainder.
  EXPECT_FALSE(bucket.TryAcquire(After(50000), &retry));
  EXPECT_GE(retry, 50000);
  EXPECT_LE(retry, 50001);
  // 100ms -> one full token accrued.
  EXPECT_TRUE(bucket.TryAcquire(After(100000), &retry));
  EXPECT_FALSE(bucket.TryAcquire(After(100000), &retry));
}

TEST(TokenBucketTest, BurstCapsAccrual) {
  TokenBucket bucket(/*rate_per_sec=*/1000.0, /*burst=*/3.0);
  int64_t retry = 0;
  // Drain the initial burst and stamp the refill clock.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(T0(), &retry)) << i;
  }
  // An hour passes; the bucket holds burst=3 tokens, not 3.6 million.
  const auto later = T0() + std::chrono::hours(1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(later, &retry)) << i;
  }
  EXPECT_FALSE(bucket.TryAcquire(later, &retry));
}

TEST(TokenBucketTest, BackwardClockDoesNotMintTokens) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/1.0);
  int64_t retry = 0;
  EXPECT_TRUE(bucket.TryAcquire(After(1000000), &retry));
  // Time "goes backward" (reordered callers): no refill, no crash.
  EXPECT_FALSE(bucket.TryAcquire(T0(), &retry));
}

TEST(ClampRetryToDeadlineTest, NeverAdvisesPastTheDeadline) {
  EXPECT_EQ(ClampRetryToDeadline(5000, 2000), 2000);
  EXPECT_EQ(ClampRetryToDeadline(1000, 2000), 1000);
  // No deadline: the hint passes through.
  EXPECT_EQ(ClampRetryToDeadline(5000, 0), 5000);
  EXPECT_EQ(ClampRetryToDeadline(5000, -1), 5000);
}

TEST(AdmissionControllerTest, AdmitsWithinLimitsAndReleasesViaTicket) {
  AdmissionOptions options;
  options.max_inflight = 2;
  options.tenant_rate = 0.0;  // quotas off; this test is the limiter
  AdmissionController admission(options);

  AdmissionController::Ticket t1, t2, t3;
  EXPECT_TRUE(admission.Admit("a", T0(), 0, 0, &t1).admitted);
  EXPECT_TRUE(admission.Admit("a", T0(), 0, 0, &t2).admitted);
  EXPECT_EQ(admission.inflight(), 2);

  AdmissionDecision rejected = admission.Admit("a", T0(), 0, 7000, &t3);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.http_status, 429);
  EXPECT_EQ(rejected.reason, "concurrency_limit");
  // Retry-After is the engine's p50 drain hint.
  EXPECT_EQ(rejected.retry_after_micros, 7000);
  EXPECT_EQ(admission.inflight(), 2);  // rejection holds no permit

  t1.Release();
  EXPECT_EQ(admission.inflight(), 1);
  EXPECT_TRUE(admission.Admit("a", T0(), 0, 0, &t3).admitted);
  EXPECT_EQ(admission.inflight(), 2);
}

TEST(AdmissionControllerTest, TicketReleasesOnScopeExit) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.tenant_rate = 0.0;
  AdmissionController admission(options);
  {
    AdmissionController::Ticket t;
    EXPECT_TRUE(admission.Admit("a", T0(), 0, 0, &t).admitted);
    EXPECT_EQ(admission.inflight(), 1);
  }
  EXPECT_EQ(admission.inflight(), 0);
  AdmissionController::Ticket t;
  EXPECT_TRUE(admission.Admit("a", T0(), 0, 0, &t).admitted);
}

TEST(AdmissionControllerTest, ConcurrencyRejectionUsesDefaultHintWhenNoP50) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.tenant_rate = 0.0;
  options.default_retry_after_micros = 12345;
  AdmissionController admission(options);
  AdmissionController::Ticket held, refused;
  ASSERT_TRUE(admission.Admit("a", T0(), 0, 0, &held).admitted);
  AdmissionDecision d = admission.Admit("a", T0(), 0, /*p50=*/0, &refused);
  ASSERT_FALSE(d.admitted);
  EXPECT_EQ(d.retry_after_micros, 12345);
}

TEST(AdmissionControllerTest, TenantExhaustionLeavesOthersUntouched) {
  AdmissionOptions options;
  options.max_inflight = 100;
  options.tenant_rate = 10.0;
  options.tenant_burst = 2.0;
  AdmissionController admission(options);

  // Tenant A burns its burst.
  std::vector<AdmissionController::Ticket> held;
  for (int i = 0; i < 2; ++i) {
    held.emplace_back();
    ASSERT_TRUE(admission.Admit("a", T0(), 0, 0, &held.back()).admitted) << i;
  }
  AdmissionController::Ticket t;
  AdmissionDecision d = admission.Admit("a", T0(), 0, 0, &t);
  ASSERT_FALSE(d.admitted);
  EXPECT_EQ(d.http_status, 429);
  EXPECT_EQ(d.reason, "tenant_quota_exhausted");
  EXPECT_GE(d.retry_after_micros, 100000);  // next token at +100ms
  EXPECT_LE(d.retry_after_micros, 100001);

  // The quota rejection consumed no inflight slot, and tenant B's own
  // bucket is still full: isolation both ways.
  const int64_t inflight_after_reject = admission.inflight();
  AdmissionController::Ticket tb1, tb2;
  EXPECT_TRUE(admission.Admit("b", T0(), 0, 0, &tb1).admitted);
  EXPECT_TRUE(admission.Admit("b", T0(), 0, 0, &tb2).admitted);
  EXPECT_EQ(admission.inflight(), inflight_after_reject + 2);
}

TEST(AdmissionControllerTest, QuotaRejectionHintIsClampedToDeadline) {
  AdmissionOptions options;
  options.tenant_rate = 1.0;  // next token a full second away
  options.tenant_burst = 1.0;
  AdmissionController admission(options);
  AdmissionController::Ticket t0;
  ASSERT_TRUE(admission.Admit("a", T0(), 0, 0, &t0).admitted);

  AdmissionController::Ticket t;
  // 30ms of budget left: the 1s refill hint must shrink to fit.
  AdmissionDecision d =
      admission.Admit("a", T0(), /*remaining_deadline=*/30000, 0, &t);
  ASSERT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "tenant_quota_exhausted");
  EXPECT_EQ(d.retry_after_micros, 30000);
}

TEST(AdmissionControllerTest, OverflowBucketBeyondMaxTenants) {
  AdmissionOptions options;
  options.max_tenants = 2;
  options.tenant_rate = 10.0;
  options.tenant_burst = 1.0;
  AdmissionController admission(options);

  AdmissionController::Ticket t;
  // Two distinct tenants get their own buckets.
  EXPECT_TRUE(admission.Admit("a", T0(), 0, 0, &t).admitted);
  t.Release();
  EXPECT_TRUE(admission.Admit("b", T0(), 0, 0, &t).admitted);
  t.Release();
  // Every tenant past the cap shares one overflow bucket: the third
  // tenant takes its single burst token, the fourth finds it empty.
  EXPECT_TRUE(admission.Admit("c", T0(), 0, 0, &t).admitted);
  t.Release();
  AdmissionDecision d = admission.Admit("d", T0(), 0, 0, &t);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "tenant_quota_exhausted");
  // Known tenants keep their own (refilled) buckets meanwhile.
  EXPECT_TRUE(admission.Admit("a", After(100000), 0, 0, &t).admitted);
}

TEST(AdmissionControllerTest, DisabledGatesAdmitEverything) {
  AdmissionOptions options;
  options.max_inflight = 0;  // limiter off
  options.tenant_rate = 0.0;  // quotas off
  AdmissionController admission(options);
  std::vector<AdmissionController::Ticket> held;
  for (int i = 0; i < 500; ++i) {
    held.emplace_back();
    ASSERT_TRUE(
        admission.Admit("anyone", T0(), 0, 0, &held.back()).admitted)
        << i;
  }
}

TEST(ParseDeadlineMillisTest, AcceptsPositiveIntegers) {
  auto r = ParseDeadlineMillis("250");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 250);
  EXPECT_EQ(ParseDeadlineMillis("1").value(), 1);
}

TEST(ParseDeadlineMillisTest, RejectsMalformedValues) {
  EXPECT_FALSE(ParseDeadlineMillis("").ok());
  EXPECT_FALSE(ParseDeadlineMillis("0").ok());
  EXPECT_FALSE(ParseDeadlineMillis("-5").ok());
  EXPECT_FALSE(ParseDeadlineMillis("12abc").ok());
  EXPECT_FALSE(ParseDeadlineMillis("1.5").ok());
  EXPECT_FALSE(ParseDeadlineMillis(" 250").ok());
  // Absurd budgets (> 24h) are client bugs, not real deadlines.
  EXPECT_FALSE(ParseDeadlineMillis("999999999999").ok());
}

}  // namespace
}  // namespace net
}  // namespace crossem
