// The HTTP/1.1 message layer: incremental parsing (byte-at-a-time
// feeds, chunked bodies, keep-alive pipelining, bare-LF tolerance),
// the parser's memory limits and their suggested error statuses, the
// serializers' round-trip property, and the serving-layer Status ->
// HTTP status mapping (satellite: kUnavailable -> 429/503 split,
// kDeadlineExceeded -> 504).
#include "net/http.h"

#include <string>

#include "gtest/gtest.h"
#include "util/status.h"

namespace crossem {
namespace net {
namespace {

TEST(HttpRequestTest, FindHeaderIsCaseInsensitive) {
  HttpRequest r;
  r.headers = {{"Content-Type", "application/json"}, {"X-Tenant", "acme"}};
  ASSERT_NE(r.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*r.FindHeader("CONTENT-TYPE"), "application/json");
  EXPECT_EQ(*r.FindHeader("x-tenant"), "acme");
  EXPECT_EQ(r.FindHeader("x-deadline-ms"), nullptr);
}

TEST(HttpRequestTest, KeepAliveDefaults) {
  HttpRequest r;
  r.version = "HTTP/1.1";
  EXPECT_TRUE(r.KeepAlive());  // 1.1 default: persistent
  r.headers = {{"Connection", "close"}};
  EXPECT_FALSE(r.KeepAlive());
  r.headers = {{"Connection", "Close"}};  // token is case-insensitive
  EXPECT_FALSE(r.KeepAlive());

  HttpRequest r10;
  r10.version = "HTTP/1.0";
  EXPECT_FALSE(r10.KeepAlive());  // 1.0 default: close
  r10.headers = {{"Connection", "keep-alive"}};
  EXPECT_TRUE(r10.KeepAlive());
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest r = parser.TakeRequest();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/healthz");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.body, "");
  EXPECT_FALSE(parser.HasMessage());
  EXPECT_FALSE(parser.HasPartial());
}

// The server feeds whatever recv() returned; a byte at a time is the
// adversarial schedule every state transition must survive.
TEST(HttpParserTest, ByteAtATimeContentLengthBody) {
  HttpParser parser;
  const std::string wire =
      "POST /v1/match HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 14\r\n"
      "\r\n"
      "{\"entity\":\"a\"}";
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(&c, 1).ok());
  }
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest r = parser.TakeRequest();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.body, "{\"entity\":\"a\"}");
  ASSERT_NE(r.FindHeader("content-length"), nullptr);
}

TEST(HttpParserTest, ByteAtATimeChunkedBody) {
  HttpParser parser;
  const std::string wire =
      "POST /v1/match HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "4\r\n"
      "{\"en\r\n"
      "A\r\n"
      "tity\":\"b\"}\r\n"
      "0\r\n"
      "\r\n";
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(&c, 1).ok());
  }
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest r = parser.TakeRequest();
  EXPECT_EQ(r.body, "{\"entity\":\"b\"}");
}

TEST(HttpParserTest, ChunkedTrailersAreDiscarded) {
  HttpParser parser;
  const std::string wire =
      "POST /x HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "3\r\nabc\r\n"
      "0\r\n"
      "X-Checksum: 99\r\n"
      "\r\n";
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest r = parser.TakeRequest();
  EXPECT_EQ(r.body, "abc");
  // Trailers end the message; they do not become headers.
  EXPECT_EQ(r.FindHeader("x-checksum"), nullptr);
}

// Two pipelined requests in one read: the parser yields them one at a
// time, preserving order and keeping residual bytes buffered.
TEST(HttpParserTest, PipelinedKeepAliveRequests) {
  HttpParser parser;
  const std::string wire =
      "GET /healthz HTTP/1.1\r\n\r\n"
      "POST /v1/match HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /metr";  // partial third request
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest first = parser.TakeRequest();
  EXPECT_EQ(first.target, "/healthz");
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest second = parser.TakeRequest();
  EXPECT_EQ(second.target, "/v1/match");
  EXPECT_EQ(second.body, "hi");
  EXPECT_FALSE(parser.HasMessage());
  EXPECT_TRUE(parser.HasPartial());  // "GET /metr" is buffered
  const std::string rest = "ics HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(parser.Feed(rest.data(), rest.size()).ok());
  ASSERT_TRUE(parser.HasMessage());
  EXPECT_EQ(parser.TakeRequest().target, "/metrics");
}

TEST(HttpParserTest, AcceptsBareLfLineEndings) {
  HttpParser parser;
  const std::string wire =
      "POST /v1/match HTTP/1.1\n"
      "Content-Length: 3\n"
      "\n"
      "abc";
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest r = parser.TakeRequest();
  EXPECT_EQ(r.target, "/v1/match");
  EXPECT_EQ(r.body, "abc");
}

TEST(HttpParserTest, HeaderLimitSuggests431) {
  HttpParserLimits limits;
  limits.max_header_bytes = 64;
  HttpParser parser(HttpParser::Mode::kRequest, limits);
  const std::string wire = "GET / HTTP/1.1\r\nX-Big: " +
                           std::string(200, 'a') + "\r\n\r\n";
  Status st = parser.Feed(wire.data(), wire.size());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(parser.suggested_status(), 431);
  // Poisoned: more bytes keep failing.
  EXPECT_FALSE(parser.Feed("x", 1).ok());
}

TEST(HttpParserTest, BodyLimitSuggests413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 8;
  HttpParser parser(HttpParser::Mode::kRequest, limits);
  const std::string wire =
      "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
  Status st = parser.Feed(wire.data(), wire.size());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(parser.suggested_status(), 413);
}

TEST(HttpParserTest, ChunkedBodyLimitSuggests413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 4;
  HttpParser parser(HttpParser::Mode::kRequest, limits);
  const std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "10\r\naaaaaaaaaaaaaaaa\r\n";
  Status st = parser.Feed(wire.data(), wire.size());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(parser.suggested_status(), 413);
}

TEST(HttpParserTest, UnsupportedTransferEncodingSuggests501) {
  HttpParser parser;
  const std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
  Status st = parser.Feed(wire.data(), wire.size());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(parser.suggested_status(), 501);
}

TEST(HttpParserTest, MalformedRequestLineSuggests400) {
  HttpParser parser;
  const std::string wire = "NONSENSE\r\n\r\n";
  Status st = parser.Feed(wire.data(), wire.size());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(parser.suggested_status(), 400);
}

TEST(HttpParserTest, NegativeContentLengthSuggests400) {
  HttpParser parser;
  const std::string wire =
      "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n";
  Status st = parser.Feed(wire.data(), wire.size());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(parser.suggested_status(), 400);
}

TEST(SerializeTest, ResponseRoundTripsThroughResponseParser) {
  HttpResponse out;
  out.status = 206;
  out.SetHeader("Content-Type", "application/json");
  out.body = "{\"coverage\":0.5}";
  out.keep_alive = true;
  const std::string wire = SerializeResponse(out);

  HttpParser parser(HttpParser::Mode::kResponse);
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.HasMessage());
  HttpResponse in = parser.TakeResponse();
  EXPECT_EQ(in.status, 206);
  EXPECT_EQ(in.body, out.body);
  ASSERT_NE(in.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*in.FindHeader("content-type"), "application/json");
  ASSERT_NE(in.FindHeader("content-length"), nullptr);
  EXPECT_EQ(*in.FindHeader("content-length"),
            std::to_string(out.body.size()));
  ASSERT_NE(in.FindHeader("connection"), nullptr);
  EXPECT_EQ(*in.FindHeader("connection"), "keep-alive");
}

TEST(SerializeTest, CloseResponseSaysClose) {
  HttpResponse out;
  out.status = 503;
  out.keep_alive = false;
  const std::string wire = SerializeResponse(out);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("503"), std::string::npos);
}

TEST(SerializeTest, RequestRoundTripsThroughRequestParser) {
  HttpRequest out;
  out.method = "POST";
  out.target = "/v1/match";
  out.version = "HTTP/1.1";
  out.headers = {{"Host", "127.0.0.1"}, {"x-tenant", "acme"}};
  out.body = "{\"entity\":\"Bird 1\",\"k\":3}";
  const std::string wire = SerializeRequest(out);

  HttpParser parser;
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.HasMessage());
  HttpRequest in = parser.TakeRequest();
  EXPECT_EQ(in.method, "POST");
  EXPECT_EQ(in.target, "/v1/match");
  EXPECT_EQ(in.body, out.body);
  ASSERT_NE(in.FindHeader("x-tenant"), nullptr);
  EXPECT_EQ(*in.FindHeader("x-tenant"), "acme");
}

TEST(ReasonPhraseTest, KnownAndUnknownCodes) {
  EXPECT_STREQ(ReasonPhrase(200), "OK");
  EXPECT_STREQ(ReasonPhrase(429), "Too Many Requests");
  EXPECT_STREQ(ReasonPhrase(503), "Service Unavailable");
  EXPECT_STREQ(ReasonPhrase(504), "Gateway Timeout");
  EXPECT_STREQ(ReasonPhrase(299), "Unknown");
}

// -- Status mapping (satellite: serving rejections on the wire) -------------

TEST(ParseRetryAfterMicrosTest, ExtractsTheServiceDrainHint) {
  // The exact shape MatchService emits on queue-full.
  EXPECT_EQ(ParseRetryAfterMicros(
                "match queue full (2 of 2 pending); retry after 1500us"),
            1500);
  EXPECT_EQ(ParseRetryAfterMicros("retry after 1us"), 1);
  EXPECT_EQ(ParseRetryAfterMicros("no hint here"), -1);
  EXPECT_EQ(ParseRetryAfterMicros("retry after soonus"), -1);
  EXPECT_EQ(ParseRetryAfterMicros("retry after 500"), -1);  // no unit
  EXPECT_EQ(ParseRetryAfterMicros(""), -1);
}

TEST(HttpCodeForStatusTest, UnavailableSplitsOnRetryHint) {
  // Queue-full backpressure carries the drain hint: the client should
  // back off and retry here -> 429.
  EXPECT_EQ(HttpCodeForStatus(Status::Unavailable(
                "match queue full (4 of 4 pending); retry after 2000us")),
            429);
  // Shutdown / breaker-open carries none: go elsewhere -> 503.
  EXPECT_EQ(HttpCodeForStatus(Status::Unavailable("service shut down")), 503);
  EXPECT_EQ(HttpCodeForStatus(
                Status::Unavailable("shard 2 circuit breaker open")),
            503);
}

TEST(HttpCodeForStatusTest, FullMapping) {
  EXPECT_EQ(HttpCodeForStatus(Status::OK()), 200);
  EXPECT_EQ(HttpCodeForStatus(Status::InvalidArgument("bad k")), 400);
  EXPECT_EQ(HttpCodeForStatus(Status::OutOfRange("k too big")), 400);
  EXPECT_EQ(HttpCodeForStatus(Status::NotFound("no such entity")), 404);
  EXPECT_EQ(HttpCodeForStatus(Status::DeadlineExceeded("expired")), 504);
  EXPECT_EQ(HttpCodeForStatus(Status::Internal("bug")), 500);
  EXPECT_EQ(HttpCodeForStatus(Status::IOError("disk")), 500);
}

TEST(RetryAfterSecondsTest, WholeSecondsRoundedUpAtLeastOne) {
  EXPECT_EQ(RetryAfterSeconds(1), "1");
  EXPECT_EQ(RetryAfterSeconds(999999), "1");
  EXPECT_EQ(RetryAfterSeconds(1000000), "1");
  EXPECT_EQ(RetryAfterSeconds(1000001), "2");
  EXPECT_EQ(RetryAfterSeconds(3500000), "4");
  EXPECT_EQ(RetryAfterSeconds(0), "1");
  EXPECT_EQ(RetryAfterSeconds(-5), "1");  // never a nonsense negative
}

}  // namespace
}  // namespace net
}  // namespace crossem
