// Numeric gradient checking helper for autograd tests.
#ifndef CROSSEM_TESTS_TESTING_GRADCHECK_H_
#define CROSSEM_TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace crossem {
namespace testing {

/// Checks autograd gradients of `fn` (tensor -> scalar tensor) against
/// central finite differences at `x`. `fn` must be deterministic.
inline void ExpectGradMatchesNumeric(
    const std::function<Tensor(const Tensor&)>& fn, Tensor x,
    float eps = 1e-3f, float rtol = 5e-2f, float atol = 5e-3f) {
  x.set_requires_grad(true);
  x.ZeroGrad();
  Tensor out = fn(x);
  ASSERT_EQ(out.numel(), 1) << "gradcheck needs a scalar objective";
  out.Backward();
  Tensor analytic = x.grad();
  ASSERT_TRUE(analytic.defined());

  std::vector<float> numeric(static_cast<size_t>(x.numel()));
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    float plus;
    {
      NoGradGuard guard;
      plus = fn(x).item();
    }
    x.data()[i] = orig - eps;
    float minus;
    {
      NoGradGuard guard;
      minus = fn(x).item();
    }
    x.data()[i] = orig;
    numeric[static_cast<size_t>(i)] = (plus - minus) / (2.0f * eps);
  }

  for (int64_t i = 0; i < x.numel(); ++i) {
    const float a = analytic.at(i);
    const float n = numeric[static_cast<size_t>(i)];
    const float tol = atol + rtol * std::fabs(n);
    EXPECT_NEAR(a, n, tol) << "grad mismatch at flat index " << i;
  }
}

}  // namespace testing
}  // namespace crossem

#endif  // CROSSEM_TESTS_TESTING_GRADCHECK_H_
