#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace crossem {
namespace {

/// Restores the default thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

TEST(ParallelTest, NumChunksCoversRange) {
  EXPECT_EQ(NumChunks(0, 0, 4), 0);
  EXPECT_EQ(NumChunks(0, 1, 4), 1);
  EXPECT_EQ(NumChunks(0, 4, 4), 1);
  EXPECT_EQ(NumChunks(0, 5, 4), 2);
  EXPECT_EQ(NumChunks(3, 11, 4), 2);
  EXPECT_EQ(NumChunks(5, 3, 4), 0);  // empty (reversed) range
}

TEST(ParallelTest, ForVisitsEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, EmptyRangeNeverInvokesBody) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { calls++; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { calls++; });
  ParallelForChunks(0, 0, 16, [&](int64_t, int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelTest, ChunkBoundsRespectGrain) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::atomic<bool> bad{false};
  ParallelForChunks(2, 23, 5, [&](int64_t c, int64_t b, int64_t e) {
    if (b != 2 + c * 5 || e != std::min<int64_t>(23, b + 5) || e <= b) {
      bad.store(true);
    }
  });
  EXPECT_FALSE(bad.load());
}

TEST(ParallelTest, NestedRegionsRunInline) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int64_t> total{0};
  std::atomic<bool> saw_region_flag{true};
  ParallelFor(0, 16, 1, [&](int64_t lo, int64_t hi) {
    if (!InParallelRegion()) saw_region_flag.store(false);
    for (int64_t i = lo; i < hi; ++i) {
      // A nested parallel call must complete inline without deadlock.
      ParallelFor(0, 100, 10, [&](int64_t nlo, int64_t nhi) {
        total.fetch_add(nhi - nlo);
      });
    }
  });
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(total.load(), 16 * 100);
}

TEST(ParallelTest, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [&](int64_t lo, int64_t) {
                    if (lo == 500) throw std::runtime_error("chunk failure");
                  }),
      std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int64_t> n{0};
  ParallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) { n += hi - lo; });
  EXPECT_EQ(n.load(), 100);
}

TEST(ParallelTest, ExceptionInlinePathRestoresRegionFlag) {
  ThreadCountGuard guard;
  SetNumThreads(1);
  EXPECT_THROW(ParallelFor(0, 10, 2,
                           [](int64_t, int64_t) {
                             throw std::logic_error("inline failure");
                           }),
               std::logic_error);
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelTest, ReduceMatchesSerialSum) {
  ThreadCountGuard guard;
  std::vector<double> values(5'000);
  std::iota(values.begin(), values.end(), 1.0);
  auto run = [&] {
    return ParallelReduce<double>(
        0, static_cast<int64_t>(values.size()), 128, 0.0,
        [&](int64_t lo, int64_t hi) {
          double part = 0.0;
          for (int64_t i = lo; i < hi; ++i) {
            part += values[static_cast<size_t>(i)];
          }
          return part;
        },
        [](double a, double b) { return a + b; });
  };
  SetNumThreads(1);
  const double serial = run();
  SetNumThreads(8);
  const double parallel = run();
  // Bitwise equality: the chunk decomposition and combine order are fixed.
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, 5'000.0 * 5'001.0 / 2.0);
}

TEST(ParallelTest, SetNumThreadsRoundTrips) {
  ThreadCountGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3);
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1);  // env or hardware default
}

}  // namespace
}  // namespace crossem
