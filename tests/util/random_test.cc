#include "util/random.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"

namespace crossem {
namespace {

TEST(RngTest, SeedDeterminism) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformRealRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 0.5);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(4);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(6);
  auto s = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (int64_t x : s) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(7);
  auto s = rng.SampleWithoutReplacement(5, 5);
  std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(8);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[static_cast<size_t>(rng.Categorical(w))]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(9);
  std::vector<double> w = {-5.0, 2.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(w), 1);
}

}  // namespace
}  // namespace crossem
