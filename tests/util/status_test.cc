#include "util/status.h"

#include "gtest/gtest.h"

namespace crossem {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad dim");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("abc"));
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "abc");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  CROSSEM_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> SumOfDoubles(int a, int b) {
  int da = 0;
  CROSSEM_ASSIGN_OR_RETURN(da, Doubled(a));
  // A second expansion in the same scope must not collide with the first.
  int db = 0;
  CROSSEM_ASSIGN_OR_RETURN(db, Doubled(b));
  return da + db;
}

Result<std::string> MovedThrough() {
  std::string s;
  CROSSEM_ASSIGN_OR_RETURN(s, Result<std::string>(std::string("payload")));
  return s;
}

TEST(ResultTest, AssignOrReturnMacroAssignsAndPropagates) {
  auto ok = SumOfDoubles(2, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 10);

  auto first_fails = SumOfDoubles(-1, 3);
  ASSERT_FALSE(first_fails.ok());
  EXPECT_EQ(first_fails.status().code(), StatusCode::kInvalidArgument);

  auto second_fails = SumOfDoubles(2, -4);
  ASSERT_FALSE(second_fails.ok());
  EXPECT_EQ(second_fails.status().code(), StatusCode::kInvalidArgument);

  auto moved = MovedThrough();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), "payload");
}

}  // namespace
}  // namespace crossem
