#include "gtest/gtest.h"
#include "util/memory_tracker.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace crossem {
namespace {

TEST(MemoryTrackerTest, AllocFreeBalance) {
  auto& t = MemoryTracker::Instance();
  int64_t before = t.current_bytes();
  t.OnAlloc(100);
  EXPECT_EQ(t.current_bytes(), before + 100);
  t.OnFree(100);
  EXPECT_EQ(t.current_bytes(), before);
}

TEST(MemoryTrackerTest, PeakMonotoneUntilReset) {
  auto& t = MemoryTracker::Instance();
  t.ResetPeak();
  int64_t base = t.peak_bytes();
  t.OnAlloc(500);
  EXPECT_GE(t.peak_bytes(), base + 500);
  t.OnFree(500);
  EXPECT_GE(t.peak_bytes(), base + 500);  // peak persists
  t.ResetPeak();
  EXPECT_LT(t.peak_bytes(), base + 500);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"Method", "H@1"});
  tp.AddRow({"CLIP", "68.00"});
  tp.AddRow({"CrossEM+", "82.00"});
  std::string s = tp.ToString();
  EXPECT_NE(s.find("| Method   | H@1   |"), std::string::npos);
  EXPECT_NE(s.find("| CrossEM+ | 82.00 |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter tp({"A", "B", "C"});
  tp.AddRow({"x"});
  std::string s = tp.ToString();
  EXPECT_NE(s.find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Fmt(0.5, 3), "0.500");
}

}  // namespace
}  // namespace crossem
