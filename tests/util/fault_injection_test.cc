#include "util/fault_injection.h"

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/crc32.h"

namespace crossem {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Every test leaves the process-wide plan disarmed.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Clear(); }
  void TearDown() override { fault::Clear(); }
};

TEST(Crc32Test, KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, data.size()}) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "some checkpoint payload";
  const uint32_t before = Crc32(data.data(), data.size());
  data[5] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), before);
}

TEST_F(FaultInjectionTest, NthWriteFailsOnce) {
  const std::string path = TempPath("fault_nth_write.bin");
  fault::FailOn(fault::FileOp::kWrite, 2);
  std::FILE* f = io::Fopen(path, "wb");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(io::Fwrite("a", 1, 1, f), 1u);
  errno = 0;
  EXPECT_EQ(io::Fwrite("b", 1, 1, f), 0u);  // the injected failure
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(io::Fwrite("c", 1, 1, f), 1u);  // non-sticky: recovers
  std::fclose(f);
  EXPECT_EQ(fault::CallCount(fault::FileOp::kWrite), 3);
  EXPECT_EQ(fault::InjectedCount(fault::FileOp::kWrite), 1);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, StickyOpenKeepsFailing) {
  fault::FailOn(fault::FileOp::kOpen, 1, /*sticky=*/true);
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(io::Fopen(TempPath("fault_sticky.bin"), "wb"), nullptr);
    EXPECT_EQ(errno, EIO);
  }
  EXPECT_EQ(fault::InjectedCount(fault::FileOp::kOpen), 3);
}

TEST_F(FaultInjectionTest, ClearDisarms) {
  fault::FailOn(fault::FileOp::kOpen, 1, /*sticky=*/true);
  fault::Clear();
  const std::string path = TempPath("fault_cleared.bin");
  std::FILE* f = io::Fopen(path, "wb");
  EXPECT_NE(f, nullptr);
  if (f != nullptr) std::fclose(f);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ArmFromSpecParsesCompoundSpecs) {
  ASSERT_TRUE(fault::ArmFromSpec("write:3,open:1+").ok());
  // open is sticky from call 1; write fails only on call 3.
  errno = 0;
  EXPECT_EQ(io::Fopen(TempPath("x"), "wb"), nullptr);
  EXPECT_EQ(errno, EIO);
  EXPECT_FALSE(fault::ShouldFail(fault::FileOp::kWrite));
  EXPECT_FALSE(fault::ShouldFail(fault::FileOp::kWrite));
  EXPECT_TRUE(fault::ShouldFail(fault::FileOp::kWrite));
  EXPECT_FALSE(fault::ShouldFail(fault::FileOp::kWrite));
}

TEST_F(FaultInjectionTest, ArmFromSpecRejectsMalformedSpecs) {
  for (const char* bad :
       {"write", "write:", "write:x", "write:0", "write:-1", "chmod:1"}) {
    EXPECT_EQ(fault::ArmFromSpec(bad).code(), StatusCode::kInvalidArgument)
        << bad;
  }
  // Nothing was armed by the rejected specs.
  const std::string path = TempPath("fault_still_ok.bin");
  std::FILE* f = io::Fopen(path, "wb");
  EXPECT_NE(f, nullptr);
  if (f != nullptr) std::fclose(f);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ServeShardSpecParsesAllForms) {
  ASSERT_TRUE(fault::ArmFromSpec("serve_shard:delay_ms=25:shard=2").ok());
  // Non-matching shard: untouched.
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kNone);
  // Matching shard: every call delayed by 25ms.
  fault::ShardFaultAction a = fault::OnShardCall(2);
  EXPECT_EQ(a.mode, fault::ShardFaultMode::kDelay);
  EXPECT_EQ(a.delay_ms, 25);
  EXPECT_EQ(fault::ShardCallCount(2), 1);
  EXPECT_EQ(fault::ShardFaultInjectedCount(), 1);
  fault::Clear();

  // File ops and shard faults share one spec string.
  ASSERT_TRUE(fault::ArmFromSpec("write:2,serve_shard:drop:every=2").ok());
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kNone);
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kDrop);
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kNone);
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kDrop);
  EXPECT_FALSE(fault::ShouldFail(fault::FileOp::kWrite));
  EXPECT_TRUE(fault::ShouldFail(fault::FileOp::kWrite));
}

TEST_F(FaultInjectionTest, ServeShardNthAndStickyForms) {
  // nth=3 fires exactly on the 3rd call to each shard; nth=2+ is sticky.
  ASSERT_TRUE(fault::ArmFromSpec("serve_shard:stuck:nth=3").ok());
  EXPECT_EQ(fault::OnShardCall(1).mode, fault::ShardFaultMode::kNone);
  EXPECT_EQ(fault::OnShardCall(1).mode, fault::ShardFaultMode::kNone);
  EXPECT_EQ(fault::OnShardCall(1).mode, fault::ShardFaultMode::kStuck);
  EXPECT_EQ(fault::OnShardCall(1).mode, fault::ShardFaultMode::kNone);
  // Counters are per shard: shard 5's own count starts fresh.
  EXPECT_EQ(fault::OnShardCall(5).mode, fault::ShardFaultMode::kNone);
  fault::Clear();

  ASSERT_TRUE(fault::ArmFromSpec("serve_shard:corrupt:nth=2+").ok());
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kNone);
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kCorrupt);
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kCorrupt);
}

TEST_F(FaultInjectionTest, ServeShardProbabilityIsDeterministic) {
  ASSERT_TRUE(fault::ArmFromSpec("serve_shard:drop:p=0.5").ok());
  std::vector<fault::ShardFaultMode> first;
  int64_t injected = 0;
  for (int i = 0; i < 64; ++i) {
    first.push_back(fault::OnShardCall(0).mode);
    if (first.back() == fault::ShardFaultMode::kDrop) ++injected;
  }
  // A fair-ish coin: some of each over 64 draws.
  EXPECT_GT(injected, 8);
  EXPECT_LT(injected, 56);
  // Deterministic: re-arming and replaying the same (shard, call)
  // sequence reproduces the exact decision stream.
  fault::Clear();
  ASSERT_TRUE(fault::ArmFromSpec("serve_shard:drop:p=0.5").ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fault::OnShardCall(0).mode, first[static_cast<size_t>(i)])
        << "call " << i;
  }
}

TEST_F(FaultInjectionTest, ServeShardFirstMatchingSpecWins) {
  // Two arms: shard 1 gets dropped; everything else every=1 delayed.
  ASSERT_TRUE(
      fault::ArmFromSpec("serve_shard:drop:shard=1,serve_shard:delay_ms=5")
          .ok());
  EXPECT_EQ(fault::OnShardCall(1).mode, fault::ShardFaultMode::kDrop);
  fault::ShardFaultAction a = fault::OnShardCall(0);
  EXPECT_EQ(a.mode, fault::ShardFaultMode::kDelay);
  EXPECT_EQ(a.delay_ms, 5);
}

TEST_F(FaultInjectionTest, ServeShardSpecRejectsMalformedForms) {
  for (const char* bad :
       {"serve_shard", "serve_shard:", "serve_shard:nap",
        "serve_shard:delay_ms=", "serve_shard:delay_ms=0",
        "serve_shard:delay_ms=x", "serve_shard:drop:shard=",
        "serve_shard:drop:shard=-1", "serve_shard:drop:every=0",
        "serve_shard:drop:p=1.5", "serve_shard:drop:p=-0.1",
        "serve_shard:drop:p=zz",
        // At most one occurrence modifier per spec.
        "serve_shard:drop:every=2:nth=3", "serve_shard:drop:p=0.5:every=2"}) {
    EXPECT_EQ(fault::ArmFromSpec(bad).code(), StatusCode::kInvalidArgument)
        << bad;
  }
  // Nothing armed by the rejected specs.
  EXPECT_EQ(fault::OnShardCall(0).mode, fault::ShardFaultMode::kNone);
  EXPECT_EQ(fault::ShardFaultInjectedCount(), 0);
}

TEST_F(FaultInjectionTest, ClearDisarmsShardFaults) {
  fault::ShardFaultSpec spec;
  spec.mode = fault::ShardFaultMode::kDrop;
  fault::ArmShardFault(spec);
  EXPECT_EQ(fault::OnShardCall(3).mode, fault::ShardFaultMode::kDrop);
  fault::Clear();
  EXPECT_EQ(fault::OnShardCall(3).mode, fault::ShardFaultMode::kNone);
  EXPECT_EQ(fault::ShardFaultInjectedCount(), 0);
  // Disarmed calls take the lock-free fast path and are not counted.
  EXPECT_EQ(fault::ShardCallCount(3), 0);
}

TEST_F(FaultInjectionTest, FileExistsIsNeverInjected) {
  const std::string path = TempPath("fault_exists_probe.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  for (int op = 0; op < fault::kNumFileOps; ++op) {
    fault::FailOn(static_cast<fault::FileOp>(op), 1, /*sticky=*/true);
  }
  EXPECT_TRUE(io::FileExists(path));
  EXPECT_FALSE(io::FileExists(TempPath("fault_never_created.bin")));
  fault::Clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crossem
