# Empty compiler generated dependencies file for bench_sweep_hyperparams.
# This may be replaced when dependencies are built.
