file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_hyperparams.dir/bench_sweep_hyperparams.cc.o"
  "CMakeFiles/bench_sweep_hyperparams.dir/bench_sweep_hyperparams.cc.o.d"
  "bench_sweep_hyperparams"
  "bench_sweep_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
