file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pcp.dir/bench_micro_pcp.cc.o"
  "CMakeFiles/bench_micro_pcp.dir/bench_micro_pcp.cc.o.d"
  "bench_micro_pcp"
  "bench_micro_pcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
