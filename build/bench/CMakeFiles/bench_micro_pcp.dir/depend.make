# Empty dependencies file for bench_micro_pcp.
# This may be replaced when dependencies are built.
