file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_kg_integration.dir/bench_table5_kg_integration.cc.o"
  "CMakeFiles/bench_table5_kg_integration.dir/bench_table5_kg_integration.cc.o.d"
  "bench_table5_kg_integration"
  "bench_table5_kg_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_kg_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
