file(REMOVE_RECURSE
  "CMakeFiles/crossem_bench_harness.dir/harness.cc.o"
  "CMakeFiles/crossem_bench_harness.dir/harness.cc.o.d"
  "libcrossem_bench_harness.a"
  "libcrossem_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
