file(REMOVE_RECURSE
  "libcrossem_bench_harness.a"
)
