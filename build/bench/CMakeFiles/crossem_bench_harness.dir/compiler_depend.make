# Empty compiler generated dependencies file for crossem_bench_harness.
# This may be replaced when dependencies are built.
