# Empty dependencies file for kg_integration.
# This may be replaced when dependencies are built.
