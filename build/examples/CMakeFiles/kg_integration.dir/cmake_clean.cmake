file(REMOVE_RECURSE
  "CMakeFiles/kg_integration.dir/kg_integration.cpp.o"
  "CMakeFiles/kg_integration.dir/kg_integration.cpp.o.d"
  "kg_integration"
  "kg_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
