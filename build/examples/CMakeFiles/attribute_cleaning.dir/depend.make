# Empty dependencies file for attribute_cleaning.
# This may be replaced when dependencies are built.
