file(REMOVE_RECURSE
  "CMakeFiles/attribute_cleaning.dir/attribute_cleaning.cpp.o"
  "CMakeFiles/attribute_cleaning.dir/attribute_cleaning.cpp.o.d"
  "attribute_cleaning"
  "attribute_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
