# Empty compiler generated dependencies file for data_lake_integration.
# This may be replaced when dependencies are built.
