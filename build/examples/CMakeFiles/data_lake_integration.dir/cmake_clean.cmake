file(REMOVE_RECURSE
  "CMakeFiles/data_lake_integration.dir/data_lake_integration.cpp.o"
  "CMakeFiles/data_lake_integration.dir/data_lake_integration.cpp.o.d"
  "data_lake_integration"
  "data_lake_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_lake_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
