# Empty dependencies file for crossem_baselines.
# This may be replaced when dependencies are built.
