file(REMOVE_RECURSE
  "CMakeFiles/crossem_baselines.dir/common.cc.o"
  "CMakeFiles/crossem_baselines.dir/common.cc.o.d"
  "CMakeFiles/crossem_baselines.dir/dual_encoder.cc.o"
  "CMakeFiles/crossem_baselines.dir/dual_encoder.cc.o.d"
  "CMakeFiles/crossem_baselines.dir/fusion.cc.o"
  "CMakeFiles/crossem_baselines.dir/fusion.cc.o.d"
  "CMakeFiles/crossem_baselines.dir/gppt.cc.o"
  "CMakeFiles/crossem_baselines.dir/gppt.cc.o.d"
  "CMakeFiles/crossem_baselines.dir/imram.cc.o"
  "CMakeFiles/crossem_baselines.dir/imram.cc.o.d"
  "CMakeFiles/crossem_baselines.dir/kge.cc.o"
  "CMakeFiles/crossem_baselines.dir/kge.cc.o.d"
  "CMakeFiles/crossem_baselines.dir/mkgformer.cc.o"
  "CMakeFiles/crossem_baselines.dir/mkgformer.cc.o.d"
  "CMakeFiles/crossem_baselines.dir/transae.cc.o"
  "CMakeFiles/crossem_baselines.dir/transae.cc.o.d"
  "libcrossem_baselines.a"
  "libcrossem_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
