
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/dual_encoder.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/dual_encoder.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/dual_encoder.cc.o.d"
  "/root/repo/src/baselines/fusion.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/fusion.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/fusion.cc.o.d"
  "/root/repo/src/baselines/gppt.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/gppt.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/gppt.cc.o.d"
  "/root/repo/src/baselines/imram.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/imram.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/imram.cc.o.d"
  "/root/repo/src/baselines/kge.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/kge.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/kge.cc.o.d"
  "/root/repo/src/baselines/mkgformer.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/mkgformer.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/mkgformer.cc.o.d"
  "/root/repo/src/baselines/transae.cc" "src/baselines/CMakeFiles/crossem_baselines.dir/transae.cc.o" "gcc" "src/baselines/CMakeFiles/crossem_baselines.dir/transae.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crossem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clip/CMakeFiles/crossem_clip.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crossem_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crossem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/crossem_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/crossem_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/crossem_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crossem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
