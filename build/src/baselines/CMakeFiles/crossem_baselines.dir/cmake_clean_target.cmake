file(REMOVE_RECURSE
  "libcrossem_baselines.a"
)
