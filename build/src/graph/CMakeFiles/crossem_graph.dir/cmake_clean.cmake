file(REMOVE_RECURSE
  "CMakeFiles/crossem_graph.dir/data_mapping.cc.o"
  "CMakeFiles/crossem_graph.dir/data_mapping.cc.o.d"
  "CMakeFiles/crossem_graph.dir/graph.cc.o"
  "CMakeFiles/crossem_graph.dir/graph.cc.o.d"
  "CMakeFiles/crossem_graph.dir/json.cc.o"
  "CMakeFiles/crossem_graph.dir/json.cc.o.d"
  "CMakeFiles/crossem_graph.dir/stats.cc.o"
  "CMakeFiles/crossem_graph.dir/stats.cc.o.d"
  "libcrossem_graph.a"
  "libcrossem_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
