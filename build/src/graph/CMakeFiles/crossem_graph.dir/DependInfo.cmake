
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/data_mapping.cc" "src/graph/CMakeFiles/crossem_graph.dir/data_mapping.cc.o" "gcc" "src/graph/CMakeFiles/crossem_graph.dir/data_mapping.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/crossem_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/crossem_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/json.cc" "src/graph/CMakeFiles/crossem_graph.dir/json.cc.o" "gcc" "src/graph/CMakeFiles/crossem_graph.dir/json.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/crossem_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/crossem_graph.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crossem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
