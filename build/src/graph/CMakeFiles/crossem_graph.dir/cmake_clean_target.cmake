file(REMOVE_RECURSE
  "libcrossem_graph.a"
)
