# Empty compiler generated dependencies file for crossem_graph.
# This may be replaced when dependencies are built.
