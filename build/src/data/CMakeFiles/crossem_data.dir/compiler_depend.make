# Empty compiler generated dependencies file for crossem_data.
# This may be replaced when dependencies are built.
