
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/crossem_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/crossem_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/world.cc" "src/data/CMakeFiles/crossem_data.dir/world.cc.o" "gcc" "src/data/CMakeFiles/crossem_data.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/crossem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/crossem_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/crossem_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crossem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
