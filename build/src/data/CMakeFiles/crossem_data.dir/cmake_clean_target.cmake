file(REMOVE_RECURSE
  "libcrossem_data.a"
)
