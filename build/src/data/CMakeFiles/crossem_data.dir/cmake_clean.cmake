file(REMOVE_RECURSE
  "CMakeFiles/crossem_data.dir/dataset.cc.o"
  "CMakeFiles/crossem_data.dir/dataset.cc.o.d"
  "CMakeFiles/crossem_data.dir/world.cc.o"
  "CMakeFiles/crossem_data.dir/world.cc.o.d"
  "libcrossem_data.a"
  "libcrossem_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
