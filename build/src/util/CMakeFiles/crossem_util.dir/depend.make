# Empty dependencies file for crossem_util.
# This may be replaced when dependencies are built.
