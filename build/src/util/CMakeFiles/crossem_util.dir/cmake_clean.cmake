file(REMOVE_RECURSE
  "CMakeFiles/crossem_util.dir/logging.cc.o"
  "CMakeFiles/crossem_util.dir/logging.cc.o.d"
  "CMakeFiles/crossem_util.dir/memory_tracker.cc.o"
  "CMakeFiles/crossem_util.dir/memory_tracker.cc.o.d"
  "CMakeFiles/crossem_util.dir/random.cc.o"
  "CMakeFiles/crossem_util.dir/random.cc.o.d"
  "CMakeFiles/crossem_util.dir/status.cc.o"
  "CMakeFiles/crossem_util.dir/status.cc.o.d"
  "CMakeFiles/crossem_util.dir/table_printer.cc.o"
  "CMakeFiles/crossem_util.dir/table_printer.cc.o.d"
  "libcrossem_util.a"
  "libcrossem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
