file(REMOVE_RECURSE
  "libcrossem_util.a"
)
