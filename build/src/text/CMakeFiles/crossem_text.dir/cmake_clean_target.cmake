file(REMOVE_RECURSE
  "libcrossem_text.a"
)
