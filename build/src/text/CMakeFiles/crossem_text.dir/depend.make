# Empty dependencies file for crossem_text.
# This may be replaced when dependencies are built.
