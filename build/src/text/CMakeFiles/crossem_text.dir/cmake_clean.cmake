file(REMOVE_RECURSE
  "CMakeFiles/crossem_text.dir/tokenizer.cc.o"
  "CMakeFiles/crossem_text.dir/tokenizer.cc.o.d"
  "libcrossem_text.a"
  "libcrossem_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
