
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/crossem.cc" "src/core/CMakeFiles/crossem_core.dir/crossem.cc.o" "gcc" "src/core/CMakeFiles/crossem_core.dir/crossem.cc.o.d"
  "/root/repo/src/core/hard_prompt.cc" "src/core/CMakeFiles/crossem_core.dir/hard_prompt.cc.o" "gcc" "src/core/CMakeFiles/crossem_core.dir/hard_prompt.cc.o.d"
  "/root/repo/src/core/kmeans.cc" "src/core/CMakeFiles/crossem_core.dir/kmeans.cc.o" "gcc" "src/core/CMakeFiles/crossem_core.dir/kmeans.cc.o.d"
  "/root/repo/src/core/losses.cc" "src/core/CMakeFiles/crossem_core.dir/losses.cc.o" "gcc" "src/core/CMakeFiles/crossem_core.dir/losses.cc.o.d"
  "/root/repo/src/core/negative_sampling.cc" "src/core/CMakeFiles/crossem_core.dir/negative_sampling.cc.o" "gcc" "src/core/CMakeFiles/crossem_core.dir/negative_sampling.cc.o.d"
  "/root/repo/src/core/pcp.cc" "src/core/CMakeFiles/crossem_core.dir/pcp.cc.o" "gcc" "src/core/CMakeFiles/crossem_core.dir/pcp.cc.o.d"
  "/root/repo/src/core/soft_prompt.cc" "src/core/CMakeFiles/crossem_core.dir/soft_prompt.cc.o" "gcc" "src/core/CMakeFiles/crossem_core.dir/soft_prompt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clip/CMakeFiles/crossem_clip.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crossem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/crossem_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/crossem_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/crossem_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crossem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crossem_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
