file(REMOVE_RECURSE
  "CMakeFiles/crossem_core.dir/crossem.cc.o"
  "CMakeFiles/crossem_core.dir/crossem.cc.o.d"
  "CMakeFiles/crossem_core.dir/hard_prompt.cc.o"
  "CMakeFiles/crossem_core.dir/hard_prompt.cc.o.d"
  "CMakeFiles/crossem_core.dir/kmeans.cc.o"
  "CMakeFiles/crossem_core.dir/kmeans.cc.o.d"
  "CMakeFiles/crossem_core.dir/losses.cc.o"
  "CMakeFiles/crossem_core.dir/losses.cc.o.d"
  "CMakeFiles/crossem_core.dir/negative_sampling.cc.o"
  "CMakeFiles/crossem_core.dir/negative_sampling.cc.o.d"
  "CMakeFiles/crossem_core.dir/pcp.cc.o"
  "CMakeFiles/crossem_core.dir/pcp.cc.o.d"
  "CMakeFiles/crossem_core.dir/soft_prompt.cc.o"
  "CMakeFiles/crossem_core.dir/soft_prompt.cc.o.d"
  "libcrossem_core.a"
  "libcrossem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
