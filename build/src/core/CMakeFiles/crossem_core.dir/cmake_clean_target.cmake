file(REMOVE_RECURSE
  "libcrossem_core.a"
)
