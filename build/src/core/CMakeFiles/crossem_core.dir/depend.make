# Empty dependencies file for crossem_core.
# This may be replaced when dependencies are built.
