file(REMOVE_RECURSE
  "libcrossem_nn.a"
)
