file(REMOVE_RECURSE
  "CMakeFiles/crossem_nn.dir/attention.cc.o"
  "CMakeFiles/crossem_nn.dir/attention.cc.o.d"
  "CMakeFiles/crossem_nn.dir/graph_agg.cc.o"
  "CMakeFiles/crossem_nn.dir/graph_agg.cc.o.d"
  "CMakeFiles/crossem_nn.dir/layers.cc.o"
  "CMakeFiles/crossem_nn.dir/layers.cc.o.d"
  "CMakeFiles/crossem_nn.dir/module.cc.o"
  "CMakeFiles/crossem_nn.dir/module.cc.o.d"
  "CMakeFiles/crossem_nn.dir/optimizer.cc.o"
  "CMakeFiles/crossem_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/crossem_nn.dir/serialize.cc.o"
  "CMakeFiles/crossem_nn.dir/serialize.cc.o.d"
  "libcrossem_nn.a"
  "libcrossem_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
