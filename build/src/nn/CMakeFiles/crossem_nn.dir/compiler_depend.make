# Empty compiler generated dependencies file for crossem_nn.
# This may be replaced when dependencies are built.
