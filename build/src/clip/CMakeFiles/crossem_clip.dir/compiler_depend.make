# Empty compiler generated dependencies file for crossem_clip.
# This may be replaced when dependencies are built.
