file(REMOVE_RECURSE
  "libcrossem_clip.a"
)
