file(REMOVE_RECURSE
  "CMakeFiles/crossem_clip.dir/clip.cc.o"
  "CMakeFiles/crossem_clip.dir/clip.cc.o.d"
  "CMakeFiles/crossem_clip.dir/pretrain.cc.o"
  "CMakeFiles/crossem_clip.dir/pretrain.cc.o.d"
  "libcrossem_clip.a"
  "libcrossem_clip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_clip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
