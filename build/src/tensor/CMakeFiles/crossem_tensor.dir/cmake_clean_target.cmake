file(REMOVE_RECURSE
  "libcrossem_tensor.a"
)
