# Empty compiler generated dependencies file for crossem_tensor.
# This may be replaced when dependencies are built.
