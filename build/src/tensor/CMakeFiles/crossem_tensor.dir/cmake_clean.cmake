file(REMOVE_RECURSE
  "CMakeFiles/crossem_tensor.dir/ops.cc.o"
  "CMakeFiles/crossem_tensor.dir/ops.cc.o.d"
  "CMakeFiles/crossem_tensor.dir/tensor.cc.o"
  "CMakeFiles/crossem_tensor.dir/tensor.cc.o.d"
  "libcrossem_tensor.a"
  "libcrossem_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
