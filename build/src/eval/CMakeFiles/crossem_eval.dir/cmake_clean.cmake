file(REMOVE_RECURSE
  "CMakeFiles/crossem_eval.dir/metrics.cc.o"
  "CMakeFiles/crossem_eval.dir/metrics.cc.o.d"
  "CMakeFiles/crossem_eval.dir/per_class.cc.o"
  "CMakeFiles/crossem_eval.dir/per_class.cc.o.d"
  "libcrossem_eval.a"
  "libcrossem_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
