file(REMOVE_RECURSE
  "libcrossem_eval.a"
)
