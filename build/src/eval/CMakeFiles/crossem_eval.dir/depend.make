# Empty dependencies file for crossem_eval.
# This may be replaced when dependencies are built.
