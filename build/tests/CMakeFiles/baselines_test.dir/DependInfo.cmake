
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/crossem_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crossem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/crossem_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/clip/CMakeFiles/crossem_clip.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crossem_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crossem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/crossem_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/crossem_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/crossem_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crossem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
