file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/crossem_test.cc.o"
  "CMakeFiles/core_test.dir/core/crossem_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hard_prompt_test.cc.o"
  "CMakeFiles/core_test.dir/core/hard_prompt_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/kmeans_test.cc.o"
  "CMakeFiles/core_test.dir/core/kmeans_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/losses_test.cc.o"
  "CMakeFiles/core_test.dir/core/losses_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/options_sweep_test.cc.o"
  "CMakeFiles/core_test.dir/core/options_sweep_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pcp_test.cc.o"
  "CMakeFiles/core_test.dir/core/pcp_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/soft_prompt_test.cc.o"
  "CMakeFiles/core_test.dir/core/soft_prompt_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
