file(REMOVE_RECURSE
  "CMakeFiles/clip_test.dir/clip/clip_test.cc.o"
  "CMakeFiles/clip_test.dir/clip/clip_test.cc.o.d"
  "CMakeFiles/clip_test.dir/clip/pretrain_test.cc.o"
  "CMakeFiles/clip_test.dir/clip/pretrain_test.cc.o.d"
  "clip_test"
  "clip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
