# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;25;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;30;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;34;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;41;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(text_test "/root/repo/build/tests/text_test")
set_tests_properties(text_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;47;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;50;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(clip_test "/root/repo/build/tests/clip_test")
set_tests_properties(clip_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;54;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;58;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;62;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;65;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;68;crossem_add_test;/root/repo/tests/CMakeLists.txt;0;")
