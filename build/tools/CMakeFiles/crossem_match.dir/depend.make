# Empty dependencies file for crossem_match.
# This may be replaced when dependencies are built.
