file(REMOVE_RECURSE
  "CMakeFiles/crossem_match.dir/crossem_match.cc.o"
  "CMakeFiles/crossem_match.dir/crossem_match.cc.o.d"
  "crossem_match"
  "crossem_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossem_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
