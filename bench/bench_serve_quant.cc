// Quantized serving benchmark (DESIGN.md §17): flat-scan throughput,
// memory footprint, and post-re-rank recall for every row format on the
// 30k x 32 clustered world, written to BENCH_serve_quant.json.
//
// One arm per QuantFormat {f32, f16, int8}. Each arm reports:
//   - bytes_per_entity: VectorBytes()/size() — payload blocks + scales,
//     the crossem_index_bytes numerator (acceptance: int8 <= 0.30x f32,
//     f16 <= 0.55x);
//   - qps: top-10 flat scans (quantized kernels + exact f32 re-rank of
//     the top rerank_k candidates for the non-f32 arms);
//   - qps_per_gb: qps / resident vector GB — the "serve more entities
//     per machine" figure of merit (acceptance: int8 >= 2x f32);
//   - recall_at_10 against the exact f32 scan (acceptance: >= 0.99 for
//     every arm; re-rank is what holds this while the scan runs on
//     compressed rows).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/index.h"
#include "serve/quant.h"
#include "util/random.h"

namespace crossem {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Same mixture world as bench_serve's index arms: corpus and queries
// share cluster centers (one embedding space), queries use fresh noise
// at twice the spread.
Tensor ClusteredVectors(int64_t n, int64_t dim, uint64_t center_seed,
                        uint64_t noise_seed, float sigma,
                        int64_t clusters = 64) {
  Rng center_rng(center_seed);
  Tensor centers = Tensor::Randn({clusters, dim}, &center_rng, 1.0f);
  Rng rng(noise_seed);
  Tensor out = Tensor::Randn({n, dim}, &rng, sigma);
  float* o = out.data();
  const float* c = centers.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cl = rng.UniformInt(0, clusters - 1);
    for (int64_t d = 0; d < dim; ++d) o[i * dim + d] += c[cl * dim + d];
  }
  return out;
}

struct QuantArm {
  std::string format;
  double build_seconds = 0.0;
  double bytes_per_entity = 0.0;
  double bytes_ratio = 1.0;  // vs the f32 arm
  double qps = 0.0;
  double qps_per_gb = 0.0;
  double qps_ratio = 1.0;    // vs the f32 arm
  double recall_at_10 = 0.0;
};

std::vector<QuantArm> RunQuantArms(int64_t n, int64_t dim, int64_t reps) {
  std::printf("== quantized index: %lld vectors, dim %lld, %lldx%d queries ==\n",
              static_cast<long long>(n), static_cast<long long>(dim),
              static_cast<long long>(reps), 400);
  Tensor corpus = ClusteredVectors(n, dim, /*center_seed=*/101,
                                   /*noise_seed=*/101, /*sigma=*/0.25f);
  const int64_t num_queries = 400;
  const int64_t k = 10;
  Tensor queries = ClusteredVectors(num_queries, dim, /*center_seed=*/101,
                                    /*noise_seed=*/202, /*sigma=*/0.5f);
  std::vector<std::string> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(std::to_string(i));

  // The exact f32 arm doubles as the recall oracle.
  std::vector<std::vector<eval::ScoredId>> exact(num_queries);
  std::vector<QuantArm> arms;
  for (const serve::quant::QuantFormat format :
       {serve::quant::QuantFormat::kF32, serve::quant::QuantFormat::kF16,
        serve::quant::QuantFormat::kInt8}) {
    QuantArm arm;
    arm.format = serve::quant::FormatName(format);
    serve::FlatIndex index(format);
    auto t0 = std::chrono::steady_clock::now();
    if (!index.Add(corpus, ids).ok()) std::abort();
    arm.build_seconds = SecondsSince(t0);
    arm.bytes_per_entity =
        static_cast<double>(index.VectorBytes()) / static_cast<double>(n);

    std::vector<std::vector<eval::ScoredId>> got(num_queries);
    t0 = std::chrono::steady_clock::now();
    for (int64_t rep = 0; rep < reps; ++rep) {
      for (int64_t qi = 0; qi < num_queries; ++qi) {
        got[qi] = index.Search(queries.data() + qi * dim, k);
        if (got[qi].empty()) std::abort();
      }
    }
    arm.qps = static_cast<double>(reps * num_queries) / SecondsSince(t0);
    arm.qps_per_gb =
        arm.qps / (static_cast<double>(index.VectorBytes()) / 1e9);

    if (format == serve::quant::QuantFormat::kF32) {
      exact = got;
      arm.recall_at_10 = 1.0;
    } else {
      int64_t found = 0;
      for (int64_t qi = 0; qi < num_queries; ++qi) {
        for (const auto& e : exact[qi]) {
          for (const auto& g : got[qi]) {
            if (g.id == e.id) {
              ++found;
              break;
            }
          }
        }
      }
      arm.recall_at_10 =
          static_cast<double>(found) / static_cast<double>(num_queries * k);
    }
    arms.push_back(arm);
  }
  // Ratios vs the f32 arm (index 0).
  for (QuantArm& arm : arms) {
    arm.bytes_ratio = arm.bytes_per_entity / arms[0].bytes_per_entity;
    arm.qps_ratio = arm.qps / arms[0].qps;
  }
  for (const QuantArm& a : arms) {
    std::printf(
        "  %-4s build %.2fs  %6.1f B/entity (%.3fx)  %7.0f qps (%.2fx)  "
        "%8.0f qps/GB  recall@10 %.4f\n",
        a.format.c_str(), a.build_seconds, a.bytes_per_entity, a.bytes_ratio,
        a.qps, a.qps_ratio, a.qps_per_gb, a.recall_at_10);
  }
  std::printf("  int8 qps/GB vs f32: %.2fx\n",
              arms[2].qps_per_gb / arms[0].qps_per_gb);
  return arms;
}

void WriteJson(const std::string& path, int64_t n, int64_t dim,
               const std::vector<QuantArm>& arms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"world\": {\"n\": %lld, \"dim\": %lld},\n"
               "  \"quant\": [\n",
               static_cast<long long>(n), static_cast<long long>(dim));
  for (size_t i = 0; i < arms.size(); ++i) {
    const QuantArm& a = arms[i];
    std::fprintf(f,
                 "    {\"format\": \"%s\", \"build_seconds\": %.4f, "
                 "\"bytes_per_entity\": %.2f, \"bytes_ratio\": %.4f, "
                 "\"qps\": %.1f, \"qps_ratio\": %.4f, "
                 "\"qps_per_gb\": %.1f, \"recall_at_10\": %.4f}%s\n",
                 a.format.c_str(), a.build_seconds, a.bytes_per_entity,
                 a.bytes_ratio, a.qps, a.qps_ratio, a.qps_per_gb,
                 a.recall_at_10, i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crossem

int main(int argc, char** argv) {
  // --quick shrinks the corpus and repetitions for smoke runs; the
  // QPS/GB gap is host-dependent but the byte ratios and recall are not.
  int64_t n = 30000;
  int64_t reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      n = 6000;
      reps = 1;
    }
  }
  const char* env = std::getenv("CROSSEM_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_serve_quant.json";
  auto arms = crossem::RunQuantArms(n, 32, reps);
  crossem::WriteJson(path, n, 32, arms);
  return 0;
}
