// Microbenchmarks of the CrossEM+ optimization machinery
// (google-benchmark): d-hop subgraph extraction, PCP proximity, phase-3
// partitioning, negative sampling, and k-means — the components whose
// cost Table III/IV attribute to MBG/NS.
#include "bench/harness.h"
#include "bench/parallel_report.h"
#include "benchmark/benchmark.h"
#include "core/kmeans.h"
#include "core/negative_sampling.h"
#include "core/pcp.h"
#include "data/dataset.h"
#include "tensor/ops.h"

namespace crossem {
namespace {

struct PcpBenchContext {
  data::CrossModalDataset dataset;
  std::unique_ptr<clip::ClipModel> model;
  std::unique_ptr<text::Tokenizer> tokenizer;
  std::vector<graph::VertexId> vertices;
  Tensor images;
  Tensor proximity;

  PcpBenchContext() : dataset(data::BuildDataset(data::CubLikeConfig(0.6))) {
    clip::ClipConfig cc;
    cc.vocab_size = dataset.vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = dataset.world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(3);
    model = std::make_unique<clip::ClipModel>(cc, &rng);
    tokenizer = std::make_unique<text::Tokenizer>(&dataset.vocab, 32);
    for (int64_t c : dataset.test_classes) {
      vertices.push_back(dataset.entities[static_cast<size_t>(c)]);
    }
    images = dataset.StackImages(dataset.TestImageIndices());
    core::MiniBatchGenerator gen(model.get(), &dataset.graph, tokenizer.get(),
                                 core::PcpOptions{});
    proximity = gen.ComputeProximity(vertices, images);
  }
};

PcpBenchContext& Context() {
  static PcpBenchContext* ctx = new PcpBenchContext();
  return *ctx;
}

void BM_DHopSubgraph(benchmark::State& state) {
  auto& ctx = Context();
  const int64_t hops = state.range(0);
  for (auto _ : state) {
    for (graph::VertexId v : ctx.vertices) {
      auto sub = ctx.dataset.graph.DHopSubgraph(v, hops);
      benchmark::DoNotOptimize(sub.vertices.data());
    }
  }
}
BENCHMARK(BM_DHopSubgraph)->Arg(1)->Arg(2);

void BM_PcpProximity(benchmark::State& state) {
  auto& ctx = Context();
  core::MiniBatchGenerator gen(ctx.model.get(), &ctx.dataset.graph,
                               ctx.tokenizer.get(), core::PcpOptions{});
  for (auto _ : state) {
    Tensor prox = gen.ComputeProximity(ctx.vertices, ctx.images);
    benchmark::DoNotOptimize(prox.data());
  }
}
BENCHMARK(BM_PcpProximity);

void BM_PcpPartition(benchmark::State& state) {
  auto& ctx = Context();
  core::MiniBatchGenerator gen(ctx.model.get(), &ctx.dataset.graph,
                               ctx.tokenizer.get(), core::PcpOptions{});
  Rng rng(7);
  for (auto _ : state) {
    auto parts = gen.PartitionFromProximity(ctx.vertices, ctx.proximity, &rng);
    benchmark::DoNotOptimize(parts.value().size());
  }
}
BENCHMARK(BM_PcpPartition);

void BM_NegativeSampling(benchmark::State& state) {
  auto& ctx = Context();
  core::MiniBatchGenerator gen(ctx.model.get(), &ctx.dataset.graph,
                               ctx.tokenizer.get(), core::PcpOptions{});
  Rng rng(8);
  auto parts = gen.PartitionFromProximity(ctx.vertices, ctx.proximity, &rng);
  core::NegativeSampler sampler(core::NegativeSamplingOptions{});
  for (auto _ : state) {
    auto padded = sampler.Apply(parts.value(), ctx.proximity, ctx.vertices,
                                &rng);
    benchmark::DoNotOptimize(padded.size());
  }
}
BENCHMARK(BM_NegativeSampling);

void BM_KMeans(benchmark::State& state) {
  Rng data_rng(9);
  Tensor points = Tensor::Randn({state.range(0), 8}, &data_rng);
  Rng rng(10);
  for (auto _ : state) {
    auto result = core::KMeans(points, 4, &rng);
    benchmark::DoNotOptimize(result.assignments.data());
  }
}
BENCHMARK(BM_KMeans)->Arg(64)->Arg(256);

void EmitParallelReport() {
  bench::ParallelReport report;
  auto& ctx = Context();
  const std::vector<int> sweep = {1, 2, 4, 8};

  {
    // The parallel sweep runs a larger tower than the shared BM context so
    // the timing is dominated by the GEMM/encoder work the runtime
    // parallelizes rather than by per-op dispatch overhead.
    clip::ClipConfig cc;
    cc.vocab_size = ctx.dataset.vocab.size();
    cc.text_context = 32;
    cc.model_dim = 64;
    cc.text_layers = 2;
    cc.text_heads = 4;
    cc.image_layers = 2;
    cc.image_heads = 4;
    cc.patch_dim = ctx.dataset.world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 32;
    Rng rng(11);
    clip::ClipModel big_model(cc, &rng);
    text::Tokenizer tokenizer(&ctx.dataset.vocab, cc.text_context);
    core::MiniBatchGenerator gen(&big_model, &ctx.dataset.graph, &tokenizer,
                                 core::PcpOptions{});
    const std::string size =
        std::to_string(ctx.vertices.size()) + "v_dim" +
        std::to_string(cc.model_dim);
    auto proximity = [&] {
      Tensor prox = gen.ComputeProximity(ctx.vertices, ctx.images);
      benchmark::DoNotOptimize(prox.data());
    };
    // Baseline: the seed's serial scalar GEMM under the whole PCP stack,
    // so the sweep's speedup column tracks the composite improvement.
    ops::SetGemmKernel(ops::GemmKernel::kReference);
    const double seed_ns =
        report.Measure("pcp_proximity_seed_gemm", size, 1, proximity);
    ops::SetGemmKernel(ops::GemmKernel::kBlocked);
    report.MeasureSweep("pcp_proximity", size, sweep, proximity, seed_ns);
  }
  {
    Rng data_rng(9);
    Tensor points = Tensor::Randn({1024, 16}, &data_rng);
    report.MeasureSweep("kmeans", "1024x16_k8", sweep, [&] {
      // Fresh same-seed rng per run so every timing does identical work.
      Rng rng(10);
      auto result = core::KMeans(points, 8, &rng);
      benchmark::DoNotOptimize(result.assignments.data());
    });
  }

  const std::string path = bench::ParallelReportPath();
  if (report.WriteJson(path)) {
    printf("wrote %zu parallel perf records to %s\n",
           report.records().size(), path.c_str());
  }
}

}  // namespace
}  // namespace crossem

int main(int argc, char** argv) {
  crossem::EmitParallelReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crossem::bench::WriteTraceIfEnabled("BENCH_micro_pcp_trace.json");
  return 0;
}
