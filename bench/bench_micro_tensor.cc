// Microbenchmarks of the tensor/NN substrate (google-benchmark): matmul,
// softmax forward/backward, attention forward/backward. These quantify
// the engine the CrossEM results run on.
#include "bench/harness.h"
#include "bench/parallel_report.h"
#include "benchmark/benchmark.h"
#include "nn/attention.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/parallel.h"

namespace crossem {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxForward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({rows, 64}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = ops::Softmax(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxForward)->Arg(64)->Arg(512);

void BM_SoftmaxBackward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({rows, 64}, &rng);
    x.set_requires_grad(true);
    ops::Sum(ops::Softmax(x)).Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_SoftmaxBackward)->Arg(64)->Arg(256);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(4);
  nn::MultiHeadAttention mha(32, 4, &rng);
  Tensor x = Tensor::Randn({4, seq, 32}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = mha.ForwardSelf(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(48);

void BM_AttentionBackward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(5);
  nn::MultiHeadAttention mha(32, 4, &rng);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({4, seq, 32}, &rng);
    x.set_requires_grad(true);
    ops::Sum(mha.ForwardSelf(x)).Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_AttentionBackward)->Arg(16)->Arg(48);

void BM_LayerNormForward(benchmark::State& state) {
  Rng rng(6);
  nn::LayerNorm ln(64);
  Tensor x = Tensor::Randn({state.range(0), 64}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = ln.Forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormForward)->Arg(64)->Arg(512);

void EmitParallelReport() {
  bench::ParallelReport report;
  Rng rng(42);
  const std::vector<int> sweep = {1, 2, 4, 8};

  {
    // The seed repository's scalar kernel (kReference) is the fixed
    // baseline the gemm speedup column is measured against across PRs;
    // both sides run through ops::MatMul so tensor overhead cancels.
    const int64_t n = 256;
    Tensor a = Tensor::Randn({n, n}, &rng);
    Tensor b = Tensor::Randn({n, n}, &rng);
    auto matmul = [&] {
      NoGradGuard guard;
      Tensor out = ops::MatMul(a, b);
      benchmark::DoNotOptimize(out.data());
    };
    ops::SetGemmKernel(ops::GemmKernel::kReference);
    const double seed_ns =
        report.Measure("gemm_seed_scalar", "256x256x256", 1, matmul);
    ops::SetGemmKernel(ops::GemmKernel::kBlocked);
    report.MeasureSweep("gemm", "256x256x256", sweep, matmul, seed_ns);
  }
  {
    // trans_b layout (the similarity-matrix pattern V x I^T).
    const int64_t n = 256;
    Tensor a = Tensor::Randn({n, n}, &rng);
    Tensor bt = Tensor::Randn({n, n}, &rng);
    report.MeasureSweep("gemm_trans_b", "256x256x256", sweep, [&] {
      NoGradGuard guard;
      Tensor out = ops::MatMul(a, ops::Transpose(bt, 0, 1));
      benchmark::DoNotOptimize(out.data());
    });
  }
  {
    Tensor x = Tensor::Randn({4096, 256}, &rng);
    report.MeasureSweep("softmax_fwd", "4096x256", sweep, [&] {
      NoGradGuard guard;
      Tensor y = ops::Softmax(x);
      benchmark::DoNotOptimize(y.data());
    });
  }
  {
    Tensor x = Tensor::Randn({1 << 21}, &rng);
    report.MeasureSweep("sum_reduce", "2097152", sweep, [&] {
      NoGradGuard guard;
      Tensor s = ops::Sum(x);
      benchmark::DoNotOptimize(s.data());
    });
  }

  const std::string path = bench::ParallelReportPath();
  if (report.WriteJson(path)) {
    printf("wrote %zu parallel perf records to %s\n",
           report.records().size(), path.c_str());
  }
}

}  // namespace
}  // namespace crossem

int main(int argc, char** argv) {
  crossem::EmitParallelReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crossem::bench::WriteTraceIfEnabled("BENCH_micro_tensor_trace.json");
  return 0;
}
