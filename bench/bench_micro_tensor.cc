// Microbenchmarks of the tensor/NN substrate (google-benchmark): matmul,
// softmax forward/backward, attention forward/backward. These quantify
// the engine the CrossEM results run on.
#include "benchmark/benchmark.h"
#include "nn/attention.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace crossem {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxForward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({rows, 64}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = ops::Softmax(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxForward)->Arg(64)->Arg(512);

void BM_SoftmaxBackward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({rows, 64}, &rng);
    x.set_requires_grad(true);
    ops::Sum(ops::Softmax(x)).Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_SoftmaxBackward)->Arg(64)->Arg(256);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(4);
  nn::MultiHeadAttention mha(32, 4, &rng);
  Tensor x = Tensor::Randn({4, seq, 32}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = mha.ForwardSelf(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(48);

void BM_AttentionBackward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(5);
  nn::MultiHeadAttention mha(32, 4, &rng);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({4, seq, 32}, &rng);
    x.set_requires_grad(true);
    ops::Sum(mha.ForwardSelf(x)).Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_AttentionBackward)->Arg(16)->Arg(48);

void BM_LayerNormForward(benchmark::State& state) {
  Rng rng(6);
  nn::LayerNorm ln(64);
  Tensor x = Tensor::Randn({state.range(0), 64}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = ln.Forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormForward)->Arg(64)->Arg(512);

}  // namespace
}  // namespace crossem

BENCHMARK_MAIN();
