// Microbenchmarks of the tensor/NN substrate (google-benchmark): matmul,
// softmax forward/backward, attention forward/backward. These quantify
// the engine the CrossEM results run on.
#include "bench/harness.h"
#include "bench/parallel_report.h"
#include "benchmark/benchmark.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"
#include "util/parallel.h"

namespace crossem {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxForward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({rows, 64}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = ops::Softmax(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxForward)->Arg(64)->Arg(512);

void BM_SoftmaxBackward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({rows, 64}, &rng);
    x.set_requires_grad(true);
    ops::Sum(ops::Softmax(x)).Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_SoftmaxBackward)->Arg(64)->Arg(256);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(4);
  nn::MultiHeadAttention mha(32, 4, &rng);
  Tensor x = Tensor::Randn({4, seq, 32}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = mha.ForwardSelf(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(48);

void BM_AttentionBackward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(5);
  nn::MultiHeadAttention mha(32, 4, &rng);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({4, seq, 32}, &rng);
    x.set_requires_grad(true);
    ops::Sum(mha.ForwardSelf(x)).Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_AttentionBackward)->Arg(16)->Arg(48);

void BM_LayerNormForward(benchmark::State& state) {
  Rng rng(6);
  nn::LayerNorm ln(64);
  Tensor x = Tensor::Randn({state.range(0), 64}, &rng);
  for (auto _ : state) {
    NoGradGuard guard;
    Tensor y = ln.Forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormForward)->Arg(64)->Arg(512);

void EmitParallelReport() {
  bench::ParallelReport report;
  Rng rng(42);
  const std::vector<int> sweep = {1, 2, 4, 8};

  {
    // The seed repository's scalar kernel (kReference) is the fixed
    // baseline the gemm speedup column is measured against across PRs;
    // both sides run through ops::MatMul so tensor overhead cancels.
    const int64_t n = 256;
    Tensor a = Tensor::Randn({n, n}, &rng);
    Tensor b = Tensor::Randn({n, n}, &rng);
    auto matmul = [&] {
      NoGradGuard guard;
      Tensor out = ops::MatMul(a, b);
      benchmark::DoNotOptimize(out.data());
    };
    ops::SetGemmKernel(ops::GemmKernel::kReference);
    const double seed_ns =
        report.Measure("gemm_seed_scalar", "256x256x256", 1, matmul);
    ops::SetGemmKernel(ops::GemmKernel::kBlocked);
    report.MeasureSweep("gemm", "256x256x256", sweep, matmul, seed_ns);
  }
  {
    // trans_b layout (the similarity-matrix pattern V x I^T).
    const int64_t n = 256;
    Tensor a = Tensor::Randn({n, n}, &rng);
    Tensor bt = Tensor::Randn({n, n}, &rng);
    report.MeasureSweep("gemm_trans_b", "256x256x256", sweep, [&] {
      NoGradGuard guard;
      Tensor out = ops::MatMul(a, ops::Transpose(bt, 0, 1));
      benchmark::DoNotOptimize(out.data());
    });
  }
  {
    Tensor x = Tensor::Randn({4096, 256}, &rng);
    report.MeasureSweep("softmax_fwd", "4096x256", sweep, [&] {
      NoGradGuard guard;
      Tensor y = ops::Softmax(x);
      benchmark::DoNotOptimize(y.data());
    });
  }
  {
    Tensor x = Tensor::Randn({1 << 21}, &rng);
    report.MeasureSweep("sum_reduce", "2097152", sweep, [&] {
      NoGradGuard guard;
      Tensor s = ops::Sum(x);
      benchmark::DoNotOptimize(s.data());
    });
  }

  const std::string path = bench::ParallelReportPath();
  if (report.WriteJson(path)) {
    printf("wrote %zu parallel perf records to %s\n",
           report.records().size(), path.c_str());
  }
}

// Fused-kernel A/B (speedup column = reference ns / fused ns, both at one
// thread so graph overhead, not parallelism, is what's measured) plus the
// steady-state tensor-pool hit rate of a training loop.
void EmitFusedReport() {
  bench::ParallelReport report;
  Rng rng(43);

  {
    nn::LayerNorm ln(256);
    Tensor x = Tensor::Randn({512, 256}, &rng);
    auto fwd = [&] {
      NoGradGuard guard;
      Tensor y = ln.Forward(x);
      benchmark::DoNotOptimize(y.data());
    };
    ops::SetFusedKernels(ops::FusedKernels::kReference);
    const double ref_ns =
        report.Measure("layernorm_fwd_ref", "512x256", 1, fwd);
    ops::SetFusedKernels(ops::FusedKernels::kFused);
    report.Measure("layernorm_fwd", "512x256", 1, fwd, ref_ns);
  }
  {
    // The acceptance target: LayerNorm + scaled softmax through a full
    // forward+backward, fused vs the composed-op tape.
    nn::LayerNorm ln(256);
    Tensor x = Tensor::Randn({256, 256}, &rng);
    x.set_requires_grad(true);
    auto train = [&] {
      x.ZeroGrad();
      ln.ZeroGrad();
      Tensor h = ln.Forward(x);
      Tensor s;
      if (ops::GetFusedKernels() == ops::FusedKernels::kFused) {
        s = ops::ScaledMaskedSoftmax(h, 0.125f);
      } else {
        s = ops::Softmax(ops::MulScalar(h, 0.125f));
      }
      ops::Sum(s).Backward();
      benchmark::DoNotOptimize(x.grad().data());
    };
    ops::SetFusedKernels(ops::FusedKernels::kReference);
    const double ref_ns =
        report.Measure("ln_softmax_train_ref", "256x256", 1, train);
    ops::SetFusedKernels(ops::FusedKernels::kFused);
    report.Measure("ln_softmax_train", "256x256", 1, train, ref_ns);
  }
  {
    // Masked attention-score softmax, forward only.
    Tensor scores = Tensor::Randn({8, 4, 64, 64}, &rng);
    Tensor mask = Tensor::Ones({8, 64});
    float* mp = mask.data();
    for (int64_t i = 48; i < 64; ++i) mp[i] = 0.0f;  // pad batch 0's tail
    const float scale = 0.125f;
    auto ref = [&] {
      NoGradGuard guard;
      Tensor s = ops::MulScalar(scores, scale);
      Tensor bias =
          ops::MulScalar(ops::AddScalar(mask.Detach(), -1.0f), 1e9f);
      bias = ops::Reshape(bias, {8, 1, 1, 64});
      Tensor y = ops::Softmax(ops::Add(s, bias));
      benchmark::DoNotOptimize(y.data());
    };
    auto fused = [&] {
      NoGradGuard guard;
      Tensor y = ops::ScaledMaskedSoftmax(scores, scale, mask);
      benchmark::DoNotOptimize(y.data());
    };
    const double ref_ns =
        report.Measure("scaled_masked_softmax_ref", "8x4x64x64", 1, ref);
    report.Measure("scaled_masked_softmax", "8x4x64x64", 1, fused, ref_ns);
  }
  {
    Rng wrng(7);
    nn::Linear lin(256, 256, &wrng);
    Tensor x = Tensor::Randn({512, 256}, &rng);
    auto fwd = [&] {
      NoGradGuard guard;
      Tensor y = lin.Forward(x, ops::BiasAct::kGelu);
      benchmark::DoNotOptimize(y.data());
    };
    ops::SetFusedKernels(ops::FusedKernels::kReference);
    const double ref_ns = report.Measure("bias_gelu_ref", "512x256", 1, fwd);
    ops::SetFusedKernels(ops::FusedKernels::kFused);
    report.Measure("bias_gelu", "512x256", 1, fwd, ref_ns);
  }
  {
    // Steady-state pool behaviour of a realistic Fit step: a transformer
    // encoder forward+backward re-allocates the same activation and grad
    // shapes every step, so after warmup every Acquire should hit the
    // freelists. The hit rate rides in the speedup column.
    ops::SetFusedKernels(ops::FusedKernels::kFused);
    Rng wrng(8);
    nn::TransformerEncoder enc(2, 32, 4, 64, &wrng);
    Tensor x = Tensor::Randn({4, 16, 32}, &rng);
    x.set_requires_grad(true);
    auto step = [&] {
      x.ZeroGrad();
      enc.ZeroGrad();
      ops::Sum(enc.Forward(x)).Backward();
    };
    for (int i = 0; i < 5; ++i) step();  // warmup: populate the freelists
    auto& pool = internal::TensorPool::Instance();
    const int64_t hits0 = pool.hits();
    const int64_t misses0 = pool.misses();
    const double ns = report.Measure("fit_step_pooled", "2L_32d_4x16", 1, step);
    const int64_t dh = pool.hits() - hits0;
    const int64_t dm = pool.misses() - misses0;
    const double hit_rate =
        (dh + dm) > 0 ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                      : (internal::TensorPool::Enabled() ? 0.0 : 1.0);
    bench::ParallelBenchRecord rec;
    rec.op = "fit_pool_hit_rate";
    rec.size = "2L_32d_4x16";
    rec.threads = 1;
    rec.ns_per_iter = ns;
    rec.speedup = hit_rate;  // rate, not a speedup; see check script
    report.AddRecord(rec);
  }
  ops::SetFusedKernels(ops::FusedKernels::kFused);

  const std::string path = bench::FusedReportPath();
  if (report.WriteJson(path)) {
    printf("wrote %zu fused perf records to %s\n", report.records().size(),
           path.c_str());
  }
}

}  // namespace
}  // namespace crossem

int main(int argc, char** argv) {
  crossem::EmitParallelReport();
  crossem::EmitFusedReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crossem::bench::WriteTraceIfEnabled("BENCH_micro_tensor_trace.json");
  return 0;
}
