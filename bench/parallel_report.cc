#include "bench/parallel_report.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "graph/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace crossem {
namespace bench {

namespace {

/// Min-of-repetitions timing: repeats `fn` until ~200ms of samples (at
/// least 3 runs after one warmup) and returns the fastest in ns.
double TimeNs(const std::function<void()>& fn) {
  fn();  // warmup
  double best = -1.0;
  double total = 0.0;
  int reps = 0;
  while ((total < 0.2 || reps < 3) && reps < 50) {
    Timer timer;
    fn();
    const double sec = timer.ElapsedSeconds();
    total += sec;
    ++reps;
    if (best < 0.0 || sec < best) best = sec;
  }
  return best * 1e9;
}

std::string RecordKey(const std::string& op, const std::string& size,
                      int threads) {
  std::ostringstream key;
  key << op << '|' << size << '|' << threads;
  return key.str();
}

graph::JsonValue ToJson(const ParallelBenchRecord& r) {
  std::map<std::string, graph::JsonValue> obj;
  obj["op"] = graph::JsonValue::String(r.op);
  obj["size"] = graph::JsonValue::String(r.size);
  obj["threads"] = graph::JsonValue::Number(r.threads);
  obj["ns_per_iter"] = graph::JsonValue::Number(r.ns_per_iter);
  obj["speedup"] = graph::JsonValue::Number(r.speedup);
  return graph::JsonValue::Object(std::move(obj));
}

}  // namespace

double ParallelReport::Measure(const std::string& op, const std::string& size,
                               int threads, const std::function<void()>& fn,
                               double baseline_ns) {
  SetNumThreads(threads);
  const double ns = TimeNs(fn);
  SetNumThreads(0);
  ParallelBenchRecord rec;
  rec.op = op;
  rec.size = size;
  rec.threads = threads;
  rec.ns_per_iter = ns;
  rec.speedup = baseline_ns > 0.0 ? baseline_ns / ns : 1.0;
  records_.push_back(rec);
  return ns;
}

void ParallelReport::MeasureSweep(const std::string& op,
                                  const std::string& size,
                                  const std::vector<int>& thread_counts,
                                  const std::function<void()>& fn,
                                  double baseline_ns) {
  double base = baseline_ns;
  for (int t : thread_counts) {
    const double ns = Measure(op, size, t, fn, base);
    if (base <= 0.0) {
      // First (typically 1-thread) run anchors the sweep's speedups.
      base = ns;
      records_.back().speedup = 1.0;
    }
  }
}

bool ParallelReport::WriteJson(const std::string& path) const {
  // Load existing records so repeated bench runs merge rather than clobber.
  std::map<std::string, graph::JsonValue> merged;  // key -> record object
  std::vector<std::string> order;
  std::ifstream in(path);
  if (in) {
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = graph::ParseJson(buf.str());
    if (parsed.ok() && parsed.value().is_object()) {
      const graph::JsonValue* recs = parsed.value().Find("records");
      if (recs != nullptr && recs->is_array()) {
        for (const graph::JsonValue& r : recs->array_items()) {
          const graph::JsonValue* op = r.Find("op");
          const graph::JsonValue* size = r.Find("size");
          const graph::JsonValue* threads = r.Find("threads");
          if (!op || !size || !threads) continue;
          const std::string key =
              RecordKey(op->string_value(), size->string_value(),
                        static_cast<int>(threads->number_value()));
          if (merged.emplace(key, r).second) order.push_back(key);
        }
      }
    }
  }
  for (const ParallelBenchRecord& r : records_) {
    const std::string key = RecordKey(r.op, r.size, r.threads);
    if (merged.find(key) == merged.end()) order.push_back(key);
    merged[key] = ToJson(r);
  }

  std::vector<graph::JsonValue> array;
  array.reserve(order.size());
  for (const std::string& key : order) array.push_back(merged.at(key));
  std::map<std::string, graph::JsonValue> doc;
  doc["records"] = graph::JsonValue::Array(std::move(array));

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    CROSSEM_LOG(Error) << "cannot write " << path;
    return false;
  }
  out << graph::JsonValue::Object(std::move(doc)).Dump() << "\n";
  return static_cast<bool>(out);
}

std::string ParallelReportPath() {
  if (const char* env = std::getenv("CROSSEM_BENCH_JSON")) return env;
  return "BENCH_parallel.json";
}

}  // namespace bench
}  // namespace crossem
