#include "bench/parallel_report.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "graph/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace crossem {
namespace bench {

namespace {

/// Min-of-repetitions timing: repeats `fn` until ~200ms of samples (at
/// least 3 runs after one warmup) and returns the fastest in ns.
double TimeNs(const std::function<void()>& fn) {
  fn();  // warmup
  double best = -1.0;
  double total = 0.0;
  int reps = 0;
  while ((total < 0.2 || reps < 3) && reps < 50) {
    Timer timer;
    fn();
    const double sec = timer.ElapsedSeconds();
    total += sec;
    ++reps;
    if (best < 0.0 || sec < best) best = sec;
  }
  return best * 1e9;
}

std::string RecordKey(const std::string& op, const std::string& size,
                      int threads) {
  std::ostringstream key;
  key << op << '|' << size << '|' << threads;
  return key.str();
}

graph::JsonValue ToJson(const ParallelBenchRecord& r) {
  std::map<std::string, graph::JsonValue> obj;
  obj["op"] = graph::JsonValue::String(r.op);
  obj["size"] = graph::JsonValue::String(r.size);
  obj["threads"] = graph::JsonValue::Number(r.threads);
  obj["ns_per_iter"] = graph::JsonValue::Number(r.ns_per_iter);
  obj["speedup"] = graph::JsonValue::Number(r.speedup);
  return graph::JsonValue::Object(std::move(obj));
}

}  // namespace

double ParallelReport::Measure(const std::string& op, const std::string& size,
                               int threads, const std::function<void()>& fn,
                               double baseline_ns) {
  SetNumThreads(threads);
  const double ns = TimeNs(fn);
  SetNumThreads(0);
  ParallelBenchRecord rec;
  rec.op = op;
  rec.size = size;
  rec.threads = threads;
  rec.ns_per_iter = ns;
  rec.speedup = baseline_ns > 0.0 ? baseline_ns / ns : 1.0;
  records_.push_back(rec);
  return ns;
}

void ParallelReport::MeasureSweep(const std::string& op,
                                  const std::string& size,
                                  const std::vector<int>& thread_counts,
                                  const std::function<void()>& fn,
                                  double baseline_ns) {
  // Interleaved rounds: time every thread count several times round-robin
  // and keep each count's fastest round. Sequential sweeps on a shared
  // machine otherwise attribute slow drift (thermal, cgroup throttling)
  // to whichever count happened to run last, which reads as a phantom
  // scaling regression.
  constexpr int kRounds = 7;
  const size_t counts = thread_counts.size();
  std::vector<std::vector<double>> samples(counts);
  std::vector<double> best(counts, -1.0);
  for (int round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < counts; ++i) {
      SetNumThreads(thread_counts[i]);
      const double ns = TimeNs(fn);
      samples[i].push_back(ns);
      if (best[i] < 0.0 || ns < best[i]) best[i] = ns;
    }
  }
  SetNumThreads(0);
  for (size_t i = 0; i < counts; ++i) {
    ParallelBenchRecord rec;
    rec.op = op;
    rec.size = size;
    rec.threads = thread_counts[i];
    rec.ns_per_iter = best[i];
    if (baseline_ns > 0.0) {
      // External baseline (e.g. the seed scalar kernel): plain ratio.
      rec.speedup = baseline_ns / best[i];
    } else if (i == 0) {
      rec.speedup = 1.0;  // first count anchors the speedups
    } else {
      // Self-anchored sweep: pair each round's timing with the SAME
      // round's anchor timing so shared-machine drift cancels, then keep
      // the best round — the ratio analogue of the min-time convention.
      // Comparing global minima instead would bias every non-anchor count
      // to <= 1.0: with identical true speed the anchor's global floor
      // can only be tied, never beaten.
      double ratio = -1.0;
      for (int r = 0; r < kRounds; ++r) {
        ratio = std::max(ratio, samples[0][r] / samples[i][r]);
      }
      rec.speedup = ratio;
    }
    records_.push_back(rec);
  }
}

bool ParallelReport::WriteJson(const std::string& path) const {
  // Load existing records so repeated bench runs merge rather than clobber.
  std::map<std::string, graph::JsonValue> merged;  // key -> record object
  std::vector<std::string> order;
  std::ifstream in(path);
  if (in) {
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = graph::ParseJson(buf.str());
    if (parsed.ok() && parsed.value().is_object()) {
      const graph::JsonValue* recs = parsed.value().Find("records");
      if (recs != nullptr && recs->is_array()) {
        for (const graph::JsonValue& r : recs->array_items()) {
          const graph::JsonValue* op = r.Find("op");
          const graph::JsonValue* size = r.Find("size");
          const graph::JsonValue* threads = r.Find("threads");
          if (!op || !size || !threads) continue;
          const std::string key =
              RecordKey(op->string_value(), size->string_value(),
                        static_cast<int>(threads->number_value()));
          if (merged.emplace(key, r).second) order.push_back(key);
        }
      }
    }
  }
  for (const ParallelBenchRecord& r : records_) {
    const std::string key = RecordKey(r.op, r.size, r.threads);
    if (merged.find(key) == merged.end()) order.push_back(key);
    merged[key] = ToJson(r);
  }

  std::vector<graph::JsonValue> array;
  array.reserve(order.size());
  for (const std::string& key : order) array.push_back(merged.at(key));
  std::map<std::string, graph::JsonValue> doc;
  doc["records"] = graph::JsonValue::Array(std::move(array));

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    CROSSEM_LOG(Error) << "cannot write " << path;
    return false;
  }
  out << graph::JsonValue::Object(std::move(doc)).Dump() << "\n";
  return static_cast<bool>(out);
}

std::string ReportPathFromEnv(const char* env_var, const char* fallback) {
  if (const char* env = std::getenv(env_var)) return env;
  return fallback;
}

std::string ParallelReportPath() {
  return ReportPathFromEnv("CROSSEM_BENCH_JSON", "BENCH_parallel.json");
}

std::string FusedReportPath() {
  return ReportPathFromEnv("CROSSEM_BENCH_FUSED_JSON", "BENCH_fused.json");
}

std::string PlanReportPath() {
  return ReportPathFromEnv("CROSSEM_BENCH_PLAN_JSON", "BENCH_plan.json");
}

}  // namespace bench
}  // namespace crossem
