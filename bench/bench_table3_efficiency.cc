// Reproduces Table III: training efficiency — average per-epoch time (T,
// seconds) and peak tensor memory (Mem, MB standing in for GPU memory) of
// every trainable method on the three datasets.
//
// Expected shape (paper Sec. V-B, Exp-2): CrossEM+ takes the least
// training time and memory of the trainable methods; CrossEM w/ f_pro^h
// does not train at all (reported as "-", as in the paper).
#include <cstdio>

#include "baselines/dual_encoder.h"
#include "baselines/fusion.h"
#include "baselines/gppt.h"
#include "baselines/imram.h"
#include "baselines/transae.h"
#include "bench/harness.h"
#include "util/table_printer.h"

namespace crossem {
namespace bench {
namespace {

void AddRow(TablePrinter* table, const MethodResult& r) {
  table->AddRow({r.method,
                 r.trained ? TablePrinter::Fmt(r.seconds_per_epoch, 3) : "-",
                 r.trained ? TablePrinter::Fmt(r.peak_mb, 2) : "-"});
}

void RunDataset(const data::DatasetConfig& dataset_config) {
  HarnessConfig cfg;
  cfg.dataset = dataset_config;
  Experiment exp(cfg);
  std::printf("== Table III — %s\n", exp.dataset().name.c_str());
  TablePrinter table({"Method", "T (s/epoch)", "Mem (MB)"});

  baselines::AlignBaseline align;
  AddRow(&table, exp.RunBaseline(&align, 24));
  baselines::VisualBertBaseline visual_bert;
  AddRow(&table, exp.RunBaseline(&visual_bert, 8));
  baselines::VilBertBaseline vilbert;
  AddRow(&table, exp.RunBaseline(&vilbert, 8));
  baselines::TransAeBaseline transae;
  AddRow(&table, exp.RunBaseline(&transae, 10));
  baselines::ImramBaseline imram;
  AddRow(&table, exp.RunBaseline(&imram, 8));
  baselines::GpptBaseline gppt;
  AddRow(&table, exp.RunBaseline(&gppt, 10));
  AddRow(&table, exp.RunCrossEm("CrossEM w/ hard", HardPromptOptions2()));
  AddRow(&table, exp.RunCrossEm("CrossEM w/ soft", SoftPromptOptions2()));
  AddRow(&table, exp.RunCrossEm("CrossEM+", PlusOptions()));
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace crossem

int main() {
  using namespace crossem;
  bench::RunDataset(data::CubLikeConfig(0.8));
  bench::RunDataset(data::SunLikeConfig(0.7));
  bench::RunDataset(data::Fb2kLikeConfig(0.4));
  bench::WriteTraceIfEnabled("BENCH_table3_trace.json");
  return 0;
}
