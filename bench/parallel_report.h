// Machine-readable perf tracking for the parallel runtime.
//
// The micro benches (bench_micro_tensor, bench_micro_pcp) time their hot
// kernels across a thread sweep and merge the results into
// BENCH_parallel.json so the perf trajectory is comparable across PRs.
// Each record is {op, size, threads, ns_per_iter, speedup}; speedup is
// measured against either the op's own 1-thread run or an explicitly
// provided reference (e.g. the pre-optimization scalar GEMM).
#ifndef CROSSEM_BENCH_PARALLEL_REPORT_H_
#define CROSSEM_BENCH_PARALLEL_REPORT_H_

#include <functional>
#include <string>
#include <vector>

namespace crossem {
namespace bench {

struct ParallelBenchRecord {
  std::string op;
  std::string size;
  int threads = 1;
  double ns_per_iter = 0.0;
  double speedup = 1.0;
};

/// Collects timing records and merges them into a JSON file.
class ParallelReport {
 public:
  /// Times `fn` once at `threads` workers and records it. `baseline_ns`
  /// (when > 0) is the reference for the speedup column; otherwise the
  /// record's own time is the baseline (speedup 1.0). Returns ns/iter.
  double Measure(const std::string& op, const std::string& size, int threads,
                 const std::function<void()>& fn, double baseline_ns = 0.0);

  /// Times `fn` at each thread count in order. The first count's time is
  /// the speedup baseline unless `baseline_ns` > 0 overrides it.
  void MeasureSweep(const std::string& op, const std::string& size,
                    const std::vector<int>& thread_counts,
                    const std::function<void()>& fn, double baseline_ns = 0.0);

  /// Appends a pre-built record (for derived quantities like the pool hit
  /// rate that are not plain timings).
  void AddRecord(ParallelBenchRecord record) {
    records_.push_back(std::move(record));
  }

  const std::vector<ParallelBenchRecord>& records() const { return records_; }

  /// Merges the collected records into the JSON document at `path`
  /// (overwriting records with the same op/size/threads key) and writes it
  /// back. Logs and returns false on I/O or parse failure.
  bool WriteJson(const std::string& path) const;

 private:
  std::vector<ParallelBenchRecord> records_;
};

/// Resolves a report output path: the value of `env_var` when set, else
/// `fallback` in the working directory.
std::string ReportPathFromEnv(const char* env_var, const char* fallback);

/// Output path for BENCH_parallel.json: the CROSSEM_BENCH_JSON env var, or
/// "BENCH_parallel.json" in the working directory.
std::string ParallelReportPath();

/// Output path for the fused-kernel / pool report: CROSSEM_BENCH_FUSED_JSON,
/// or "BENCH_fused.json" in the working directory.
std::string FusedReportPath();

/// Output path for the execution-plan report: CROSSEM_BENCH_PLAN_JSON, or
/// "BENCH_plan.json" in the working directory.
std::string PlanReportPath();

}  // namespace bench
}  // namespace crossem

#endif  // CROSSEM_BENCH_PARALLEL_REPORT_H_
