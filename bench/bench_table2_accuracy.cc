// Reproduces Table II: overall matching accuracy (Hits@1/3/5, MRR) of all
// competitor families and the CrossEM variants on the CUB-like, SUN-like
// and FB2K-IMG-like datasets.
//
// Expected shape (paper Sec. V-B, Exp-1): the prompt-based CrossEM
// variants dominate the fusion encoders and GPPT; CrossEM+ >= CrossEM >=
// zero-shot CLIP; soft vs hard prompts are alternatives whose winner
// depends on the dataset.
#include <cstdio>

#include "baselines/dual_encoder.h"
#include "baselines/fusion.h"
#include "baselines/gppt.h"
#include "baselines/imram.h"
#include "baselines/transae.h"
#include "bench/harness.h"
#include "util/table_printer.h"

namespace crossem {
namespace bench {
namespace {

constexpr uint64_t kSeeds[] = {17, 23};

/// Mean metrics of one method across seeds.
struct Accumulated {
  std::string method;
  eval::RankingMetrics sum;
  int64_t runs = 0;

  void Add(const MethodResult& r) {
    method = r.method;
    sum.hits_at_1 += r.metrics.hits_at_1;
    sum.hits_at_3 += r.metrics.hits_at_3;
    sum.hits_at_5 += r.metrics.hits_at_5;
    sum.mrr += r.metrics.mrr;
    ++runs;
  }
};

void AddRow(TablePrinter* table, const Accumulated& a) {
  const double n = static_cast<double>(a.runs);
  table->AddRow({a.method, TablePrinter::Fmt(a.sum.hits_at_1 / n),
                 TablePrinter::Fmt(a.sum.hits_at_3 / n),
                 TablePrinter::Fmt(a.sum.hits_at_5 / n),
                 TablePrinter::Fmt(a.sum.mrr / n, 3)});
}

void RunDataset(const data::DatasetConfig& dataset_config,
                float name_mention_prob) {
  std::vector<Accumulated> rows(10);
  std::string header;
  for (uint64_t seed : kSeeds) {
    HarnessConfig cfg;
    cfg.dataset = dataset_config;
    cfg.name_mention_prob = name_mention_prob;
    cfg.seed = seed;
    Experiment exp(cfg);
    if (header.empty()) {
      header = exp.dataset().name + " (" +
               std::to_string(exp.vertices().size()) + " test entities, " +
               std::to_string(exp.images().size(0)) + " test images, " +
               std::to_string(sizeof(kSeeds) / sizeof(kSeeds[0])) + " seeds)";
    }
    size_t r = 0;
    {  // Dual encoders.
      baselines::AlignBaseline align;
      rows[r++].Add(exp.RunBaseline(&align, /*epochs=*/24));
      baselines::ClipZeroShot clip_zs(exp.model());
      exp.RestoreModel();
      rows[r++].Add(exp.RunBaseline(&clip_zs, /*epochs=*/0));
    }
    {  // Fusion encoders.
      baselines::VisualBertBaseline visual_bert;
      rows[r++].Add(exp.RunBaseline(&visual_bert, /*epochs=*/8));
      baselines::VilBertBaseline vilbert;
      rows[r++].Add(exp.RunBaseline(&vilbert, /*epochs=*/8));
      baselines::TransAeBaseline transae;
      rows[r++].Add(exp.RunBaseline(&transae, /*epochs=*/10));
      baselines::ImramBaseline imram;
      rows[r++].Add(exp.RunBaseline(&imram, /*epochs=*/8));
    }
    {  // Prompt-tuning approaches.
      baselines::GpptBaseline gppt;
      rows[r++].Add(exp.RunBaseline(&gppt, /*epochs=*/10));
      rows[r++].Add(exp.RunCrossEm("CrossEM w/ hard", HardPromptOptions2()));
      rows[r++].Add(exp.RunCrossEm("CrossEM w/ soft", SoftPromptOptions2()));
      rows[r++].Add(exp.RunCrossEm("CrossEM+", PlusOptions()));
    }
  }
  std::printf("== Table II — %s\n", header.c_str());
  TablePrinter table({"Method", "H@1", "H@3", "H@5", "MRR"});
  for (const Accumulated& a : rows) AddRow(&table, a);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace crossem

int main(int argc, char** argv) {
  using namespace crossem;
  // Optional argument restricts to one dataset: cub | sun | fb2k.
  const std::string only = argc > 1 ? argv[1] : "";
  // The simulated web corpus covers bird-species names sparsely (0.35),
  // scene/entity names moderately (0.45) — see DESIGN.md substitutions.
  if (only.empty() || only == "cub") {
    bench::RunDataset(data::CubLikeConfig(1.0), 0.35f);
  }
  if (only.empty() || only == "sun") {
    bench::RunDataset(data::SunLikeConfig(0.8), 0.45f);
  }
  if (only.empty() || only == "fb2k") {
    bench::RunDataset(data::Fb2kLikeConfig(0.5), 0.45f);
  }
  return 0;
}
