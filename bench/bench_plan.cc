// fit_step micro-bench: compiled ExecutionPlan replay vs the eager tape
// (BENCH_plan.json). One tuning step — image+text encode, similarity,
// mutual-NN pseudo-positive selection, contrastive loss, backward — is
// timed through core/step_plan.h's trace/replay path and through the
// equivalent eager code, at 1 and 8 threads.
//
// Records:
//   fit_step_eager_ref   eager step ns/iter (anchor rows, not gated)
//   fit_step_plan        speedup = same-thread eager ns / plan ns. The
//                        replay advantage is the per-step graph build,
//                        pool traffic and backward DFS the plan skips;
//                        single-core it is modest (the closures ARE the
//                        kernel work), and it widens with cores because
//                        that overhead is serial while kernels scale.
//   fit_step_seed_ref    the seed's execution mode (reference scalar GEMM
//                        + unfused kernels) at 1 thread
//   fit_step_plan_vs_seed  composite column: plan replay vs the seed
//                        step, same convention as pcp_proximity_seed_gemm
//   fit_step_replay_rate fraction of measured planned steps served by
//                        replay; 1.0 = zero re-traces after warmup
//                        (ns_per_iter column carries the re-trace count)
//
// All ratios ride the regression gate in tools/check_bench_regression.py.
#include <cstdio>
#include <vector>

#include "bench/parallel_report.h"
#include "clip/clip.h"
#include "core/crossem.h"
#include "core/losses.h"
#include "core/step_plan.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "tensor/plan.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace crossem {
namespace {

struct PlanBenchContext {
  data::CrossModalDataset dataset;
  std::unique_ptr<clip::ClipModel> model;
  std::unique_ptr<text::Tokenizer> tokenizer;
  std::unique_ptr<core::CrossEm> matcher;
  core::CrossEmOptions options;
  std::vector<graph::VertexId> verts;  // one batch of vertices
  std::vector<int64_t> image_indices;  // one batch of images
  Tensor images;
  std::vector<Tensor> params;

  PlanBenchContext() : dataset(data::BuildDataset(data::CubLikeConfig(0.6))) {
    clip::ClipConfig cc;
    cc.vocab_size = dataset.vocab.size();
    cc.text_context = 32;
    cc.model_dim = 16;
    cc.text_layers = 1;
    cc.text_heads = 2;
    cc.image_layers = 1;
    cc.image_heads = 2;
    cc.patch_dim = dataset.world->config().patch_dim;
    cc.max_patches = 16;
    cc.embed_dim = 12;
    Rng rng(3);
    model = std::make_unique<clip::ClipModel>(cc, &rng);
    tokenizer = std::make_unique<text::Tokenizer>(&dataset.vocab, 32);

    options.prompt_mode = core::PromptMode::kSoft;
    matcher = std::make_unique<core::CrossEm>(model.get(), &dataset.graph,
                                              tokenizer.get(), options);

    std::vector<graph::VertexId> all;
    for (int64_t c : dataset.test_classes) {
      all.push_back(dataset.entities[static_cast<size_t>(c)]);
    }
    images = dataset.StackImages(dataset.TestImageIndices());
    const size_t nv = std::min<size_t>(
        all.size(), static_cast<size_t>(options.batch_vertices));
    verts.assign(all.begin(), all.begin() + static_cast<long>(nv));
    const int64_t ni = std::min<int64_t>(images.size(0), options.batch_images);
    for (int64_t i = 0; i < ni; ++i) image_indices.push_back(i);

    // The trainable set of a soft-prompt Fit with the towers frozen.
    params = matcher->soft_prompt()->Parameters();
  }
};

void EmitPlanReport() {
  bench::ParallelReport report;
  PlanBenchContext ctx;
  const std::string size = std::to_string(ctx.verts.size()) + "v" +
                           std::to_string(ctx.image_indices.size()) +
                           "i_dim16";

  auto zero_grads = [&] {
    for (Tensor& p : ctx.params) p.ZeroGrad();
  };

  // The eager step: the exact code RunEpochAttempt's fallback branch runs.
  auto eager = [&] {
    zero_grads();
    Tensor image_emb;
    {
      NoGradGuard guard;
      std::vector<Tensor> rows;
      rows.reserve(ctx.image_indices.size());
      for (int64_t idx : ctx.image_indices) {
        rows.push_back(ops::Reshape(ops::Slice(ctx.images, 0, idx, idx + 1),
                                    {ctx.images.size(1), ctx.images.size(2)}));
      }
      image_emb = ctx.model->image().Forward(ops::Stack(rows));
    }
    core::SoftPromptGenerator::PromptBatch batch =
        ctx.matcher->soft_prompt()->Generate(ctx.verts);
    Tensor text_emb =
        ctx.model->text().ForwardFromEmbeddings(batch.embeddings, batch.mask);
    std::vector<int64_t> confident_rows;
    std::vector<int64_t> confident_targets;
    {
      NoGradGuard guard;
      Tensor sim =
          clip::ClipModel::SimilarityMatrix(text_emb.Detach(), image_emb);
      std::vector<int64_t> t2i = ops::ArgMax(sim, -1);
      std::vector<int64_t> i2t = ops::ArgMax(ops::Transpose(sim, 0, 1), -1);
      for (size_t r = 0; r < t2i.size(); ++r) {
        const int64_t img = t2i[r];
        if (i2t[static_cast<size_t>(img)] == static_cast<int64_t>(r)) {
          confident_rows.push_back(static_cast<int64_t>(r));
          confident_targets.push_back(img);
        }
      }
    }
    CROSSEM_CHECK(!confident_rows.empty());
    Tensor selected = ops::IndexSelect(text_emb, confident_rows);
    Tensor loss =
        ctx.model->ContrastiveLoss(selected, image_emb, confident_targets);
    loss.Backward();
  };

  // The planned step: trace once, replay every later call.
  core::FitStepPlanner planner(ctx.model.get(), ctx.matcher->soft_prompt(),
                               &ctx.options, ctx.params, ctx.images);
  auto planned = [&] {
    zero_grads();
    core::FitStepPlanner::StepOutcome o;
    CROSSEM_CHECK(planner.RunForward(ctx.verts, ctx.image_indices, &o));
    CROSSEM_CHECK_GT(o.num_confident, 0);
    planner.RunBackward();
  };

  const double eager_1t = report.Measure("fit_step_eager_ref", size, 1, eager);
  const double eager_8t = report.Measure("fit_step_eager_ref", size, 8, eager);

  planned();  // warmup: trace encode + loss variant
  planned();  // warmup: record the backward tape, first replay

  auto* traces =
      obs::MetricsRegistry::Default().GetCounter("plan_traces_total");
  auto* replays =
      obs::MetricsRegistry::Default().GetCounter("plan_replays_total");
  const int64_t traces0 = traces->Value();
  const int64_t replays0 = replays->Value();
  const double plan_1t =
      report.Measure("fit_step_plan", size, 1, planned, eager_1t);
  const double plan_8t =
      report.Measure("fit_step_plan", size, 8, planned, eager_8t);
  const int64_t retraces = traces->Value() - traces0;
  const int64_t replayed = replays->Value() - replays0;

  // Steady-state replay rate: every measured step should hit the plan
  // (re-traces after warmup mean the invalidation logic is thrashing).
  bench::ParallelBenchRecord rate;
  rate.op = "fit_step_replay_rate";
  rate.size = size;
  rate.threads = 1;
  rate.ns_per_iter = static_cast<double>(retraces);
  rate.speedup = (replayed + retraces) > 0
                     ? static_cast<double>(replayed) /
                           static_cast<double>(replayed + retraces)
                     : 0.0;
  report.AddRecord(rate);

  // Composite column: the same step under the seed's execution mode
  // (serial scalar GEMM, unfused kernels) — what the plan replay replaces
  // when measured against the repository baseline rather than the current
  // optimized eager path. Mirrors pcp_proximity_seed_gemm.
  ops::SetGemmKernel(ops::GemmKernel::kReference);
  ops::SetFusedKernels(ops::FusedKernels::kReference);
  const double seed_1t = report.Measure("fit_step_seed_ref", size, 1, eager);
  ops::SetGemmKernel(ops::GemmKernel::kBlocked);
  ops::SetFusedKernels(ops::FusedKernels::kFused);
  bench::ParallelBenchRecord composite;
  composite.op = "fit_step_plan_vs_seed";
  composite.size = size;
  composite.threads = 1;
  composite.ns_per_iter = plan_1t;
  composite.speedup = seed_1t / plan_1t;
  report.AddRecord(composite);

  std::printf(
      "fit_step %s: eager %.0f/%.0f ns (1T/8T), plan %.0f/%.0f ns "
      "(%.2fx/%.2fx), seed %.0f ns (plan %.2fx), %lld re-traces after "
      "warmup\n",
      size.c_str(), eager_1t, eager_8t, plan_1t, plan_8t, eager_1t / plan_1t,
      eager_8t / plan_8t, seed_1t, seed_1t / plan_1t,
      static_cast<long long>(retraces));

  const std::string path = bench::PlanReportPath();
  if (report.WriteJson(path)) {
    std::printf("wrote %zu plan perf records to %s\n",
                report.records().size(), path.c_str());
  }
}

}  // namespace
}  // namespace crossem

int main() {
  crossem::plan::SetEnabled(true);
  crossem::EmitPlanReport();
  return 0;
}
