// Serving-layer benchmark: ANN index throughput/recall and MatchService
// micro-batching gains, written to BENCH_serve.json.
//
// Arms:
//   1. Index: flat vs HNSW top-10 QPS and recall@10 on a 30k x 32
//      clustered corpus (acceptance: HNSW >= 5x flat QPS at recall >=
//      0.95). Queries draw from the same cluster mixture as the corpus
//      with wider noise — the contrastive objective trains text
//      embeddings to land in the image-embedding distribution, so
//      in-distribution queries model real serving traffic.
//   2. Cache: service hit rate and QPS across embedding-cache
//      capacities on a repeating vertex workload.
//   3. Service: batched vs unbatched MatchService QPS with 8 client
//      threads over a real (small) CrossEm encoder (acceptance:
//      batched >= 2x unbatched). Traffic is skewed toward a hot set,
//      as production match traffic is, so concurrent duplicate
//      requests coalesce inside a batch (one encode serves them all).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "clip/clip.h"
#include "data/dataset.h"
#include "serve/index.h"
#include "serve/service.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace crossem {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Draws from a fixed Gaussian mixture: centers come from `center_seed`,
// point noise from `noise_seed`. Corpus and queries share centers (one
// embedding space) but use their own noise seed and spread.
Tensor ClusteredVectors(int64_t n, int64_t dim, uint64_t center_seed,
                        uint64_t noise_seed, float sigma,
                        int64_t clusters = 64) {
  Rng center_rng(center_seed);
  Tensor centers = Tensor::Randn({clusters, dim}, &center_rng, 1.0f);
  Rng rng(noise_seed);
  Tensor out = Tensor::Randn({n, dim}, &rng, sigma);
  float* o = out.data();
  const float* c = centers.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cl = rng.UniformInt(0, clusters - 1);
    for (int64_t d = 0; d < dim; ++d) o[i * dim + d] += c[cl * dim + d];
  }
  return out;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct IndexArm {
  std::string backend;
  double build_seconds = 0.0;
  double qps = 0.0;
  double recall_at_10 = 0.0;
};

struct CacheArm {
  int64_t capacity = 0;
  double hit_rate = 0.0;
  double qps = 0.0;
};

struct ServiceArm {
  std::string mode;
  int64_t clients = 0;
  double qps = 0.0;
  double mean_batch = 0.0;
  int64_t latency_p50_us = 0;
  int64_t latency_p99_us = 0;
};

std::vector<IndexArm> RunIndexArms(int64_t n, int64_t dim) {
  std::printf("== index: %lld vectors, dim %lld ==\n",
              static_cast<long long>(n), static_cast<long long>(dim));
  Tensor corpus = ClusteredVectors(n, dim, /*center_seed=*/101,
                                   /*noise_seed=*/101, /*sigma=*/0.25f);
  const int64_t num_queries = 400;
  const int64_t k = 10;
  // Same centers, fresh noise, twice the spread: queries live in the
  // corpus distribution but are not near-duplicates of corpus points.
  Tensor queries = ClusteredVectors(num_queries, dim, /*center_seed=*/101,
                                    /*noise_seed=*/202, /*sigma=*/0.5f);

  std::vector<IndexArm> arms;
  serve::FlatIndex flat;
  std::vector<std::string> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(std::to_string(i));

  {
    IndexArm arm;
    arm.backend = "flat";
    auto t0 = std::chrono::steady_clock::now();
    if (!flat.Add(corpus, ids).ok()) std::abort();
    arm.build_seconds = SecondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    for (int64_t qi = 0; qi < num_queries; ++qi) {
      auto r = flat.Search(queries.data() + qi * dim, k);
      if (r.empty()) std::abort();
    }
    arm.qps = num_queries / SecondsSince(t0);
    arm.recall_at_10 = 1.0;  // exact by construction
    arms.push_back(arm);
  }
  {
    IndexArm arm;
    arm.backend = "hnsw";
    serve::HnswIndex hnsw;
    auto t0 = std::chrono::steady_clock::now();
    if (!hnsw.Add(corpus, ids).ok()) std::abort();
    arm.build_seconds = SecondsSince(t0);

    int64_t found = 0;
    t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<eval::ScoredId>> approx(num_queries);
    for (int64_t qi = 0; qi < num_queries; ++qi) {
      approx[qi] = hnsw.Search(queries.data() + qi * dim, k);
    }
    arm.qps = num_queries / SecondsSince(t0);
    for (int64_t qi = 0; qi < num_queries; ++qi) {
      auto exact = flat.Search(queries.data() + qi * dim, k);
      for (const auto& e : exact) {
        for (const auto& a : approx[qi]) {
          if (a.id == e.id) {
            ++found;
            break;
          }
        }
      }
    }
    arm.recall_at_10 =
        static_cast<double>(found) / static_cast<double>(num_queries * k);
    arms.push_back(arm);
  }
  for (const IndexArm& a : arms) {
    std::printf("  %-5s build %.2fs  %.0f qps  recall@10 %.3f\n",
                a.backend.c_str(), a.build_seconds, a.qps, a.recall_at_10);
  }
  std::printf("  hnsw/flat qps ratio: %.1fx\n", arms[1].qps / arms[0].qps);
  return arms;
}

/// The small real encoder the service arms run against.
struct ServiceWorld {
  data::CrossModalDataset dataset;
  std::unique_ptr<clip::ClipModel> model;
  std::unique_ptr<text::Tokenizer> tokenizer;
  std::unique_ptr<core::CrossEm> matcher;
  serve::FlatIndex index;
};

std::unique_ptr<ServiceWorld> BuildServiceWorld() {
  auto w = std::make_unique<ServiceWorld>();
  w->dataset = data::BuildDataset(data::CubLikeConfig(0.4));
  clip::ClipConfig cc;
  cc.vocab_size = w->dataset.vocab.size();
  cc.text_context = 32;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = w->dataset.world->config().patch_dim;
  cc.max_patches = 16;
  cc.embed_dim = 12;
  Rng rng(5);
  w->model = std::make_unique<clip::ClipModel>(cc, &rng);
  w->tokenizer = std::make_unique<text::Tokenizer>(&w->dataset.vocab,
                                                   cc.text_context);
  core::CrossEmOptions options;
  options.prompt_mode = core::PromptMode::kHard;
  w->matcher = std::make_unique<core::CrossEm>(
      w->model.get(), &w->dataset.graph, w->tokenizer.get(), options);

  Tensor images = w->dataset.StackImages(w->dataset.TestImageIndices());
  Tensor embeddings = w->matcher->EncodeImages(images);
  std::vector<std::string> ids;
  for (int64_t i = 0; i < embeddings.size(0); ++i) {
    ids.push_back("img" + std::to_string(i));
  }
  if (!w->index.Add(embeddings, ids).ok()) std::abort();
  w->index.set_model_fingerprint(w->matcher->EncoderFingerprint());
  return w;
}

/// Drives `total` requests through `clients` threads; returns wall QPS.
double DriveClients(serve::MatchService* service, const ServiceWorld& w,
                    int64_t clients, int64_t total) {
  std::vector<std::thread> threads;
  std::atomic<int64_t> next{0};
  const auto& entities = w.dataset.entities;
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const int64_t i = next.fetch_add(1);
        if (i >= total) return;
        serve::MatchRequest request;
        // Skewed production-like traffic: ~70% of requests hit two hot
        // entities, the rest spread uniformly. Deterministic per request
        // index, so every arm sees the identical sequence.
        const uint64_t h = SplitMix64(static_cast<uint64_t>(i));
        const uint64_t h2 = SplitMix64(h);
        const size_t pick =
            (h % 10) < 7 ? static_cast<size_t>(h2 % 2)
                         : 2 + static_cast<size_t>(h2 % (entities.size() - 2));
        request.vertex = entities[pick];
        request.k = 5;
        auto result = service->Match(request);
        if (!result.ok()) std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  return total / SecondsSince(t0);
}

std::vector<ServiceArm> RunServiceArms(const ServiceWorld& w) {
  const int64_t clients = 8;
  const int64_t total = 240;
  std::printf("== service: %lld clients, %lld requests ==\n",
              static_cast<long long>(clients), static_cast<long long>(total));
  std::vector<ServiceArm> arms;
  for (const char* mode : {"unbatched", "batched"}) {
    serve::MatchServiceOptions so;
    so.cache_capacity = 0;  // isolate the batching effect from the cache
    if (std::string(mode) == "unbatched") {
      so.max_batch = 1;
      so.max_wait_micros = 0;
    } else {
      // max_batch matches the client count: the fill wait ends as soon
      // as every in-flight client has submitted instead of stalling for
      // the full deadline hoping for a 16th request that cannot come.
      so.max_batch = clients;
      so.max_wait_micros = 2000;
    }
    serve::MatchService service(w.matcher.get(), &w.index, so);
    ServiceArm arm;
    arm.mode = mode;
    arm.clients = clients;
    arm.qps = DriveClients(&service, w, clients, total);
    service.Shutdown();
    serve::ServiceStats stats = service.Snapshot();
    arm.mean_batch = stats.batch_size_mean;
    arm.latency_p50_us = stats.latency_p50_us;
    arm.latency_p99_us = stats.latency_p99_us;
    arms.push_back(arm);
    std::printf("  %-9s %.0f qps  mean batch %.1f  p50 %lldus  p99 %lldus\n",
                arm.mode.c_str(), arm.qps, arm.mean_batch,
                static_cast<long long>(arm.latency_p50_us),
                static_cast<long long>(arm.latency_p99_us));
  }
  std::printf("  batched/unbatched qps ratio: %.1fx\n",
              arms[1].qps / arms[0].qps);
  return arms;
}

std::vector<CacheArm> RunCacheArms(const ServiceWorld& w) {
  std::printf("== cache sweep ==\n");
  std::vector<CacheArm> arms;
  const int64_t total = 120;
  for (int64_t capacity : {int64_t{0}, int64_t{16}, int64_t{4096}}) {
    serve::MatchServiceOptions so;
    so.cache_capacity = capacity;
    so.max_batch = 8;
    so.max_wait_micros = 1000;
    serve::MatchService service(w.matcher.get(), &w.index, so);
    CacheArm arm;
    arm.capacity = capacity;
    arm.qps = DriveClients(&service, w, 4, total);
    service.Shutdown();
    arm.hit_rate = service.Snapshot().CacheHitRate();
    arms.push_back(arm);
    std::printf("  capacity %-5lld hit rate %.2f  %.0f qps\n",
                static_cast<long long>(arm.capacity), arm.hit_rate, arm.qps);
  }
  return arms;
}

void WriteJson(const std::string& path, const std::vector<IndexArm>& index,
               const std::vector<CacheArm>& cache,
               const std::vector<ServiceArm>& service) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"index\": [\n");
  for (size_t i = 0; i < index.size(); ++i) {
    const IndexArm& a = index[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"build_seconds\": %.4f, "
                 "\"qps\": %.1f, \"recall_at_10\": %.4f}%s\n",
                 a.backend.c_str(), a.build_seconds, a.qps, a.recall_at_10,
                 i + 1 < index.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"cache\": [\n");
  for (size_t i = 0; i < cache.size(); ++i) {
    const CacheArm& a = cache[i];
    std::fprintf(f,
                 "    {\"capacity\": %lld, \"hit_rate\": %.4f, "
                 "\"qps\": %.1f}%s\n",
                 static_cast<long long>(a.capacity), a.hit_rate, a.qps,
                 i + 1 < cache.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"service\": [\n");
  for (size_t i = 0; i < service.size(); ++i) {
    const ServiceArm& a = service[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"clients\": %lld, \"qps\": %.1f, "
                 "\"mean_batch\": %.2f, \"latency_p50_us\": %lld, "
                 "\"latency_p99_us\": %lld}%s\n",
                 a.mode.c_str(), static_cast<long long>(a.clients), a.qps,
                 a.mean_batch, static_cast<long long>(a.latency_p50_us),
                 static_cast<long long>(a.latency_p99_us),
                 i + 1 < service.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crossem

int main(int argc, char** argv) {
  // --quick shrinks the corpus for smoke runs (CI, local sanity); the
  // HNSW-vs-flat ratio only shows its full gap at the default size.
  int64_t n = 30000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") n = 6000;
  }
  const char* env = std::getenv("CROSSEM_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_serve.json";

  auto index_arms = crossem::RunIndexArms(n, 32);
  auto world = crossem::BuildServiceWorld();
  auto cache_arms = crossem::RunCacheArms(*world);
  auto service_arms = crossem::RunServiceArms(*world);
  crossem::WriteJson(path, index_arms, cache_arms, service_arms);
  return 0;
}
