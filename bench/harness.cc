#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace crossem {
namespace bench {

Experiment::Experiment(HarnessConfig config)
    : config_(config), dataset_(data::BuildDataset(config.dataset)) {
  tokenizer_ = std::make_unique<text::Tokenizer>(&dataset_.vocab,
                                                 config.text_context);
  clip::ClipConfig cc;
  cc.vocab_size = dataset_.vocab.size();
  cc.text_context = config.text_context;
  cc.model_dim = config.model_dim;
  cc.text_layers = 2;
  cc.text_heads = 4;
  cc.image_layers = 2;
  cc.image_heads = 4;
  cc.patch_dim = dataset_.world->config().patch_dim;
  cc.max_patches = 16;
  cc.embed_dim = config.embed_dim;
  Rng rng(config.seed);
  model_ = std::make_unique<clip::ClipModel>(cc, &rng);

  clip::PretrainConfig pc;
  pc.epochs = config.pretrain_epochs;
  pc.batches_per_epoch = config.pretrain_batches;
  pc.batch_size = 12;
  pc.name_mention_prob = config.name_mention_prob;
  pc.seed = config.seed + 1;
  std::vector<int64_t> all(static_cast<size_t>(dataset_.world->num_classes()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
  auto stats =
      clip::PretrainClip(model_.get(), *dataset_.world, all, *tokenizer_, pc);
  CROSSEM_CHECK(stats.ok()) << stats.status().ToString();
  snapshot_ = model_->SnapshotParameters();

  for (int64_t c : dataset_.test_classes) {
    vertices_.push_back(dataset_.entities[static_cast<size_t>(c)]);
    vertex_classes_.push_back(c);
  }
  auto test_idx = dataset_.TestImageIndices();
  images_ = dataset_.StackImages(test_idx);
  for (int64_t i : test_idx) {
    image_classes_.push_back(dataset_.images[static_cast<size_t>(i)].true_class);
  }
  std::vector<int64_t> all_idx(dataset_.images.size());
  for (size_t i = 0; i < all_idx.size(); ++i) {
    all_idx[i] = static_cast<int64_t>(i);
    all_image_classes_.push_back(dataset_.images[i].true_class);
  }
  all_images_ = dataset_.StackImages(all_idx);
}

void Experiment::RestoreModel() { model_->RestoreParameters(snapshot_); }

MethodResult Experiment::RunCrossEm(const std::string& name,
                                    core::CrossEmOptions options) {
  RestoreModel();
  options.seed = config_.seed + 5;
  core::CrossEm matcher(model_.get(), &dataset_.graph, tokenizer_.get(),
                        options);
  MethodResult result;
  result.method = name;
  auto stats = matcher.Fit(vertices_, images_);
  CROSSEM_CHECK(stats.ok()) << stats.status().ToString();
  if (!stats.value().epochs.empty()) {
    result.trained = true;
    result.seconds_per_epoch = stats.value().AvgEpochSeconds();
    result.peak_mb =
        static_cast<double>(stats.value().peak_bytes) / (1024.0 * 1024.0);
  }
  Tensor scores = matcher.ScoreMatrix(vertices_, images_);
  result.metrics = eval::ComputeRankingMetricsByClass(scores, vertex_classes_,
                                                      image_classes_);
  return result;
}

baselines::BaselineContext Experiment::MakeContext(bool use_all_images) const {
  baselines::BaselineContext ctx;
  ctx.dataset = &dataset_;
  ctx.tokenizer = tokenizer_.get();
  ctx.vertices = vertices_;
  ctx.images = use_all_images ? all_images_ : images_;
  ctx.image_classes = use_all_images ? all_image_classes_ : image_classes_;
  ctx.seed = config_.seed + 9;
  return ctx;
}

MethodResult Experiment::RunBaseline(baselines::CrossModalBaseline* baseline,
                                     int64_t epochs, bool use_all_images) {
  baselines::BaselineContext ctx = MakeContext(use_all_images);
  MethodResult result;
  result.method = baseline->name();

  MemoryTracker::Instance().ResetPeak();
  PeakMemoryScope mem_scope;
  Timer timer;
  Status fit = baseline->Fit(ctx);
  CROSSEM_CHECK(fit.ok()) << baseline->name() << ": " << fit.ToString();
  const double fit_seconds = timer.ElapsedSeconds();
  if (epochs > 0 && fit_seconds > 1e-6) {
    result.trained = true;
    result.seconds_per_epoch = fit_seconds / static_cast<double>(epochs);
    result.peak_mb =
        static_cast<double>(mem_scope.PeakBytes()) / (1024.0 * 1024.0);
  }

  auto scores = baseline->Score(ctx);
  CROSSEM_CHECK(scores.ok()) << baseline->name() << ": "
                             << scores.status().ToString();
  // Metrics over whichever candidate pool was scored.
  const auto& img_classes =
      use_all_images ? all_image_classes_ : image_classes_;
  result.metrics = eval::ComputeRankingMetricsByClass(
      scores.value(), vertex_classes_, img_classes);
  return result;
}

core::CrossEmOptions BaselinePromptOptions() {
  core::CrossEmOptions opt;
  opt.prompt_mode = core::PromptMode::kBaseline;
  opt.epochs = 0;
  return opt;
}

core::CrossEmOptions HardPromptOptions2() {
  core::CrossEmOptions opt;
  opt.prompt_mode = core::PromptMode::kHard;
  opt.epochs = 0;
  return opt;
}

core::CrossEmOptions SoftPromptOptions2(int64_t epochs) {
  core::CrossEmOptions opt;
  opt.prompt_mode = core::PromptMode::kSoft;
  opt.epochs = epochs;
  // Conservative tuning: the unsupervised contrastive objective treats
  // same-entity images as in-batch negatives, so aggressive tuning
  // erodes the strong structure-aware starting point.
  opt.learning_rate = 1e-3f;
  return opt;
}

core::CrossEmOptions PlusOptions(int64_t epochs) {
  core::CrossEmOptions opt = core::CrossEmPlusOptions();
  opt.epochs = epochs;
  opt.learning_rate = 1e-3f;
  return opt;
}

void WriteTraceIfEnabled(const std::string& default_path) {
  if (!obs::TraceEnabled()) return;
  const char* env = std::getenv("CROSSEM_TRACE_JSON");
  const std::string path = (env != nullptr && env[0] != '\0')
                               ? std::string(env)
                               : default_path;
  if (obs::WriteChromeTrace(path)) {
    std::printf("wrote %lld trace spans to %s\n",
                static_cast<long long>(obs::SpanCount()), path.c_str());
  } else {
    std::fprintf(stderr, "cannot write trace '%s'\n", path.c_str());
  }
}

}  // namespace bench
}  // namespace crossem
