// Shared experiment harness for the table/figure benchmarks: builds a
// dataset, pre-trains the shared mini-CLIP once, and runs methods with
// uniform accuracy/efficiency instrumentation.
#ifndef CROSSEM_BENCH_HARNESS_H_
#define CROSSEM_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "clip/clip.h"
#include "clip/pretrain.h"
#include "core/crossem.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "text/tokenizer.h"

namespace crossem {
namespace bench {

struct HarnessConfig {
  data::DatasetConfig dataset;
  int64_t pretrain_epochs = 60;
  int64_t pretrain_batches = 20;
  /// Fraction of pre-training captions that name their entity (how well
  /// the simulated web corpus covers this domain's entity names).
  float name_mention_prob = 0.45f;
  int64_t text_context = 48;
  int64_t model_dim = 32;
  int64_t embed_dim = 24;
  uint64_t seed = 17;
};

/// Accuracy + efficiency readings for one method on one dataset.
struct MethodResult {
  std::string method;
  eval::RankingMetrics metrics;
  /// Per-epoch training time in seconds (0 for untrained methods).
  double seconds_per_epoch = 0.0;
  /// Peak tensor bytes during training, in MB (0 for untrained methods).
  double peak_mb = 0.0;
  bool trained = false;
};

/// One dataset + one pre-trained CLIP, reusable across method arms.
class Experiment {
 public:
  explicit Experiment(HarnessConfig config);

  const data::CrossModalDataset& dataset() const { return dataset_; }
  clip::ClipModel* model() { return model_.get(); }
  const text::Tokenizer& tokenizer() const { return *tokenizer_; }

  /// Matching task: test-class entity vertices and their images.
  const std::vector<graph::VertexId>& vertices() const { return vertices_; }
  const std::vector<int64_t>& vertex_classes() const {
    return vertex_classes_;
  }
  const Tensor& images() const { return images_; }
  const std::vector<int64_t>& image_classes() const { return image_classes_; }

  /// Full image repository (train + test classes) for the KG-integration
  /// case study, where train-class links supervise the baselines.
  const Tensor& all_images() const { return all_images_; }
  const std::vector<int64_t>& all_image_classes() const {
    return all_image_classes_;
  }

  /// Restores the pre-trained CLIP weights (call between method arms).
  void RestoreModel();

  /// Runs a CrossEM configuration: restore, fit, score, measure.
  MethodResult RunCrossEm(const std::string& name,
                          core::CrossEmOptions options);

  /// Runs a competitor: fit (timed as `epochs` epochs), score, measure.
  /// With `use_all_images`, scoring ranks the full repository.
  MethodResult RunBaseline(baselines::CrossModalBaseline* baseline,
                           int64_t epochs, bool use_all_images = false);

 private:
  baselines::BaselineContext MakeContext(bool use_all_images) const;

  HarnessConfig config_;
  data::CrossModalDataset dataset_;
  std::unique_ptr<text::Tokenizer> tokenizer_;
  std::unique_ptr<clip::ClipModel> model_;
  std::vector<Tensor> snapshot_;
  std::vector<graph::VertexId> vertices_;
  std::vector<int64_t> vertex_classes_;
  Tensor images_;
  std::vector<int64_t> image_classes_;
  Tensor all_images_;
  std::vector<int64_t> all_image_classes_;
};

/// When span tracing is on (CROSSEM_TRACE=1 in the environment), writes
/// everything recorded so far as Chrome trace_event JSON to
/// $CROSSEM_TRACE_JSON, or `default_path` when the variable is unset —
/// call at the end of a bench main. No-op when tracing is disabled.
void WriteTraceIfEnabled(const std::string& default_path);

/// Ready-made CrossEM option presets used across benches.
core::CrossEmOptions BaselinePromptOptions();
core::CrossEmOptions HardPromptOptions2();
/// Soft tuning default is conservative (2 epochs): without the CrossEM+
/// optimizations, longer unsupervised tuning drifts (same-entity images
/// act as in-batch negatives); CrossEM+ tolerates 4 epochs and gains.
core::CrossEmOptions SoftPromptOptions2(int64_t epochs = 2);
core::CrossEmOptions PlusOptions(int64_t epochs = 4);

}  // namespace bench
}  // namespace crossem

#endif  // CROSSEM_BENCH_HARNESS_H_
