// Resilience benchmark for the sharded serving layer, written to
// BENCH_resilience.json.
//
// Arms (same query stream, 4-shard flat split of one real encoder's
// image embeddings, deterministic fault schedules):
//   1. healthy     — no faults: the fault-free baseline for latency,
//                    coverage (must be 1.0) and class recall@10.
//   2. blackhole   — 1 of 4 shards drops every call. After the circuit
//                    breaker opens, queries must keep succeeding with
//                    partial coverage; acceptance: zero errors, recall
//                    >= 0.95x healthy, steady-state p99 <= 2x healthy.
//   3. delay_hedge — every 2nd call to one shard stalls 25ms; hedged
//                    requests must keep full coverage without eating
//                    the delay on every query.
//
// Client-side percentiles (not service-side): each query is timed at
// the caller, which is what an SLO sees. tools/check_bench_regression.py
// --resilience gates errors == 0, the blackhole coverage floor and the
// recall ratio; latency ratios are informational (CI boxes are noisy).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "clip/clip.h"
#include "data/dataset.h"
#include "serve/index.h"
#include "serve/service.h"
#include "serve/sharded.h"
#include "text/tokenizer.h"
#include "util/fault_injection.h"
#include "util/random.h"

namespace crossem {
namespace {

struct World {
  data::CrossModalDataset dataset;
  std::unique_ptr<clip::ClipModel> model;
  std::unique_ptr<text::Tokenizer> tokenizer;
  std::unique_ptr<core::CrossEm> matcher;
  serve::FlatIndex index;
  std::vector<int64_t> row_class;  // index row -> true entity class
};

std::unique_ptr<World> BuildWorld() {
  auto w = std::make_unique<World>();
  w->dataset = data::BuildDataset(data::CubLikeConfig(0.4));
  clip::ClipConfig cc;
  cc.vocab_size = w->dataset.vocab.size();
  cc.text_context = 32;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = w->dataset.world->config().patch_dim;
  cc.max_patches = 16;
  cc.embed_dim = 12;
  Rng rng(5);
  w->model = std::make_unique<clip::ClipModel>(cc, &rng);
  w->tokenizer =
      std::make_unique<text::Tokenizer>(&w->dataset.vocab, cc.text_context);
  core::CrossEmOptions options;
  options.prompt_mode = core::PromptMode::kHard;
  w->matcher = std::make_unique<core::CrossEm>(
      w->model.get(), &w->dataset.graph, w->tokenizer.get(), options);

  const std::vector<int64_t> test_rows = w->dataset.TestImageIndices();
  Tensor images = w->dataset.StackImages(test_rows);
  Tensor embeddings = w->matcher->EncodeImages(images);
  std::vector<std::string> ids;
  for (int64_t i = 0; i < embeddings.size(0); ++i) {
    ids.push_back("img" + std::to_string(i));
    w->row_class.push_back(
        w->dataset.images[static_cast<size_t>(test_rows[i])].true_class);
  }
  if (!w->index.Add(embeddings, ids).ok()) std::abort();
  w->index.set_model_fingerprint(w->matcher->EncoderFingerprint());
  return w;
}

struct Arm {
  std::string name;
  double qps = 0.0;
  int64_t latency_p50_us = 0;
  int64_t latency_p99_us = 0;
  double coverage_mean = 0.0;
  double degraded_fraction = 0.0;
  int64_t errors = 0;
  double recall_at_10 = 0.0;
  double recall_ratio = 1.0;  // vs the healthy arm
  int64_t hedges = 0;
  int64_t hedge_wins = 0;
  int64_t breaker_opens = 0;
  int64_t retries = 0;
};

serve::ShardedServiceOptions ArmOptions(const std::string& name) {
  serve::ShardedServiceOptions o;
  o.base.max_wait_micros = 0;  // lone caller: no batching
  if (name == "blackhole") {
    o.resilience.attempt_timeout_micros = 10000;
    o.resilience.max_attempts = 2;
    o.resilience.hedge_delay_micros = 3000;
    // No half-open probes mid-measurement.
    o.resilience.breaker_cooldown_micros = 600 * 1000 * 1000;
  } else if (name == "delay_hedge") {
    o.resilience.attempt_timeout_micros = 400000;  // the delay must not
    o.resilience.hedge_delay_micros = 3000;        // time out, hedges win
    o.resilience.hedge_min_samples = 1 << 30;      // pin the fixed delay
  }
  return o;
}

void ArmFaults(const std::string& name) {
  fault::Clear();
  if (name == "blackhole") {
    fault::ShardFaultSpec spec;
    spec.mode = fault::ShardFaultMode::kDrop;
    spec.shard = 1;
    fault::ArmShardFault(spec);
  } else if (name == "delay_hedge") {
    fault::ShardFaultSpec spec;
    spec.mode = fault::ShardFaultMode::kDelay;
    spec.delay_ms = 25;
    spec.shard = 0;
    spec.every = 2;
    fault::ArmShardFault(spec);
  }
}

Arm RunArm(const std::string& name, const World& w,
           const serve::ShardedIndex& sharded, int64_t rounds) {
  std::printf("== arm: %s ==\n", name.c_str());
  ArmFaults(name);
  serve::ShardedMatchService service(w.matcher.get(), &sharded,
                                     ArmOptions(name));
  const auto& entities = w.dataset.entities;

  // Warmup: one pass fills the embedding cache; for the blackhole arm,
  // keep going until the breaker on the dead shard opens so the
  // measured window is the steady state an operator would see.
  for (size_t c = 0; c < entities.size(); ++c) {
    serve::MatchRequest request;
    request.vertex = entities[c];
    request.k = 10;
    (void)service.Match(request);
  }
  if (name == "blackhole") {
    for (int i = 0; i < 64 && service.breaker_state(1) !=
                                  serve::CircuitBreaker::State::kOpen;
         ++i) {
      serve::MatchRequest request;
      request.vertex = entities[static_cast<size_t>(i) % entities.size()];
      request.k = 10;
      (void)service.Match(request);
    }
  }

  Arm arm;
  arm.name = name;
  std::vector<int64_t> latencies;
  double coverage_sum = 0.0;
  int64_t degraded = 0, recall_hits = 0, total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t r = 0; r < rounds; ++r) {
    for (size_t c = 0; c < entities.size(); ++c) {
      serve::MatchRequest request;
      request.vertex = entities[c];
      request.k = 10;
      const auto q0 = std::chrono::steady_clock::now();
      auto result = service.Match(request);
      latencies.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - q0)
              .count());
      ++total;
      if (!result.ok()) {
        ++arm.errors;
        continue;
      }
      coverage_sum += result.value().coverage;
      if (result.value().degraded) ++degraded;
      for (const serve::RankedMatch& m : result.value().matches) {
        if (w.row_class[static_cast<size_t>(m.image)] ==
            static_cast<int64_t>(c)) {
          ++recall_hits;
          break;
        }
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  service.Shutdown();

  std::sort(latencies.begin(), latencies.end());
  arm.qps = total / seconds;
  arm.latency_p50_us = latencies[latencies.size() / 2];
  arm.latency_p99_us = latencies[latencies.size() * 99 / 100];
  arm.coverage_mean = total > arm.errors
                          ? coverage_sum / static_cast<double>(total - arm.errors)
                          : 0.0;
  arm.degraded_fraction =
      static_cast<double>(degraded) / static_cast<double>(total);
  arm.recall_at_10 =
      static_cast<double>(recall_hits) / static_cast<double>(total);
  serve::ResilienceStats rs = service.ResilienceSnapshot();
  arm.hedges = rs.hedges;
  arm.hedge_wins = rs.hedge_wins;
  arm.breaker_opens = rs.breaker_opens;
  arm.retries = rs.retries;
  fault::Clear();

  std::printf(
      "  %.0f qps  p50 %lldus  p99 %lldus  coverage %.3f  recall@10 %.3f"
      "  errors %lld  hedges %lld  opens %lld\n",
      arm.qps, static_cast<long long>(arm.latency_p50_us),
      static_cast<long long>(arm.latency_p99_us), arm.coverage_mean,
      arm.recall_at_10, static_cast<long long>(arm.errors),
      static_cast<long long>(arm.hedges),
      static_cast<long long>(arm.breaker_opens));
  return arm;
}

void WriteJson(const std::string& path, const std::vector<Arm>& arms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"resilience\": [\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    std::fprintf(
        f,
        "    {\"arm\": \"%s\", \"qps\": %.1f, \"latency_p50_us\": %lld, "
        "\"latency_p99_us\": %lld, \"coverage_mean\": %.4f, "
        "\"degraded_fraction\": %.4f, \"errors\": %lld, "
        "\"recall_at_10\": %.4f, \"recall_ratio\": %.4f, "
        "\"hedges\": %lld, \"hedge_wins\": %lld, \"breaker_opens\": %lld, "
        "\"retries\": %lld}%s\n",
        a.name.c_str(), a.qps, static_cast<long long>(a.latency_p50_us),
        static_cast<long long>(a.latency_p99_us), a.coverage_mean,
        a.degraded_fraction, static_cast<long long>(a.errors), a.recall_at_10,
        a.recall_ratio, static_cast<long long>(a.hedges),
        static_cast<long long>(a.hedge_wins),
        static_cast<long long>(a.breaker_opens),
        static_cast<long long>(a.retries), i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crossem

int main(int argc, char** argv) {
  int64_t rounds = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") rounds = 3;
  }
  const char* env = std::getenv("CROSSEM_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_resilience.json";

  auto world = crossem::BuildWorld();
  crossem::serve::ShardedIndexOptions so;
  so.num_shards = 4;
  auto sharded = crossem::serve::ShardedIndex::Partition(world->index, so);
  if (!sharded.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }

  std::vector<crossem::Arm> arms;
  for (const char* name : {"healthy", "blackhole", "delay_hedge"}) {
    arms.push_back(crossem::RunArm(name, *world, *sharded.value(), rounds));
  }
  for (crossem::Arm& a : arms) {
    a.recall_ratio =
        arms[0].recall_at_10 > 0.0 ? a.recall_at_10 / arms[0].recall_at_10
                                   : 0.0;
  }
  crossem::WriteJson(path, arms);
  return 0;
}
