// Reproduces Table IV: ablation of CrossEM / CrossEM+ components on the
// three datasets — the two prompt mechanisms, and CrossEM+ without
// mini-batch generation (MBG), without property-based negative sampling
// (NS), and without the orthogonal prompt constraint (OPC).
//
// Expected shape (paper Sec. V-C): the two prompts are close
// alternatives; removing MBG costs time and memory; removing NS or OPC
// mildly costs accuracy/time; the full CrossEM+ is the best balance.
#include <cstdio>

#include "bench/harness.h"
#include "util/table_printer.h"

namespace crossem {
namespace bench {
namespace {

void AddRow(TablePrinter* table, const MethodResult& r) {
  table->AddRow({r.method, TablePrinter::Fmt(r.metrics.hits_at_1),
                 TablePrinter::Fmt(r.metrics.hits_at_5),
                 TablePrinter::Fmt(r.metrics.mrr, 3),
                 r.trained ? TablePrinter::Fmt(r.seconds_per_epoch, 3) : "-",
                 r.trained ? TablePrinter::Fmt(r.peak_mb, 2) : "-"});
}

void RunDataset(const data::DatasetConfig& dataset_config,
                float name_mention_prob) {
  HarnessConfig cfg;
  cfg.dataset = dataset_config;
  cfg.name_mention_prob = name_mention_prob;
  Experiment exp(cfg);
  std::printf("== Table IV — %s\n", exp.dataset().name.c_str());
  TablePrinter table({"Variant", "H@1", "H@5", "MRR", "T (s/ep)", "Mem (MB)"});

  AddRow(&table, exp.RunCrossEm("CrossEM w/ hard", HardPromptOptions2()));
  AddRow(&table, exp.RunCrossEm("CrossEM w/ soft", SoftPromptOptions2()));
  {
    core::CrossEmOptions o = PlusOptions();
    o.use_mini_batch_generation = false;
    AddRow(&table, exp.RunCrossEm("CrossEM+ w/o MBG", o));
  }
  {
    core::CrossEmOptions o = PlusOptions();
    o.use_negative_sampling = false;
    AddRow(&table, exp.RunCrossEm("CrossEM+ w/o NS", o));
  }
  {
    core::CrossEmOptions o = PlusOptions();
    o.use_orthogonal_constraint = false;
    AddRow(&table, exp.RunCrossEm("CrossEM+ w/o OPC", o));
  }
  AddRow(&table, exp.RunCrossEm("CrossEM+ (full)", PlusOptions()));
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace crossem

int main(int argc, char** argv) {
  using namespace crossem;
  // Optional argument restricts to one dataset: cub | sun | fb2k.
  const std::string only = argc > 1 ? argv[1] : "";
  if (only.empty() || only == "cub") {
    bench::RunDataset(data::CubLikeConfig(1.0), 0.35f);
  }
  if (only.empty() || only == "sun") {
    bench::RunDataset(data::SunLikeConfig(0.8), 0.45f);
  }
  if (only.empty() || only == "fb2k") {
    bench::RunDataset(data::Fb2kLikeConfig(0.5), 0.45f);
  }
  return 0;
}
