// Reproduces Table V (case study): multi-modal knowledge graph
// integration on the FB15K-237-IMG-like dataset — predicting which images
// attach to which (test) entities, given the graph plus the train-class
// image links. Averaged over 3 seeds.
//
// Expected shape (paper Sec. V-D): the CrossEM variants outperform the
// link-prediction-style baselines (ViLBERT, TransAE, DistMult, RotatE,
// RSME, MKGformer) by a wide margin, demonstrating cross-modal EM as a
// better integration mechanism.
#include <cstdio>

#include "baselines/fusion.h"
#include "baselines/kge.h"
#include "baselines/mkgformer.h"
#include "baselines/transae.h"
#include "bench/harness.h"
#include "util/table_printer.h"

namespace crossem {
namespace bench {
namespace {

constexpr uint64_t kSeeds[] = {17, 23};

struct Accumulated {
  std::string method;
  eval::RankingMetrics sum;
  int64_t runs = 0;

  void Add(const MethodResult& r) {
    method = r.method;
    sum.hits_at_1 += r.metrics.hits_at_1;
    sum.hits_at_3 += r.metrics.hits_at_3;
    sum.hits_at_5 += r.metrics.hits_at_5;
    sum.mrr += r.metrics.mrr;
    ++runs;
  }
};

}  // namespace
}  // namespace bench
}  // namespace crossem

int main() {
  using namespace crossem;
  using namespace crossem::bench;
  std::vector<Accumulated> rows(9);
  std::string dataset_name;
  for (uint64_t seed : kSeeds) {
    HarnessConfig cfg;
    cfg.dataset = data::Fb2kLikeConfig(0.5);
    cfg.seed = seed;
    Experiment exp(cfg);
    dataset_name = exp.dataset().name;
    size_t r = 0;
    {
      baselines::VilBertBaseline vilbert;
      rows[r++].Add(exp.RunBaseline(&vilbert, 8));
    }
    {
      baselines::TransAeBaseline transae;
      rows[r++].Add(exp.RunBaseline(&transae, 10));
    }
    for (baselines::KgeScoreFn fn :
         {baselines::KgeScoreFn::kDistMult, baselines::KgeScoreFn::kRotatE,
          baselines::KgeScoreFn::kRsme}) {
      baselines::KgeConfig kc;
      kc.score_fn = fn;
      baselines::KgeBaseline kge(kc);
      rows[r++].Add(
          exp.RunBaseline(&kge, kc.epochs, /*use_all_images=*/true));
    }
    {
      baselines::MkgFormerBaseline mkg;
      rows[r++].Add(exp.RunBaseline(&mkg, 8));
    }
    rows[r++].Add(exp.RunCrossEm("CrossEM w/ hard", HardPromptOptions2()));
    rows[r++].Add(exp.RunCrossEm("CrossEM w/ soft", SoftPromptOptions2()));
    rows[r++].Add(exp.RunCrossEm("CrossEM+", PlusOptions()));
  }

  std::printf("== Table V — multi-modal KG integration on %s (%zu seeds)\n",
              dataset_name.c_str(), sizeof(kSeeds) / sizeof(kSeeds[0]));
  TablePrinter table({"Method", "H@1", "H@3", "H@5", "MRR"});
  for (const Accumulated& a : rows) {
    const double n = static_cast<double>(a.runs);
    table.AddRow({a.method, TablePrinter::Fmt(a.sum.hits_at_1 / n),
                  TablePrinter::Fmt(a.sum.hits_at_3 / n),
                  TablePrinter::Fmt(a.sum.hits_at_5 / n),
                  TablePrinter::Fmt(a.sum.mrr / n, 3)});
  }
  table.Print();
  return 0;
}
