// Reproduces Figure 8: scalability of CrossEM (w/ f_pro^s) vs CrossEM+
// across growing FB15K-237-IMG subsets (FB2K / FB6K / FB10K-like): MRR
// (a), per-epoch training time (b), and peak memory (c).
//
// Expected shape (paper Sec. V-B, Exp-3): both grow with data size, but
// CrossEM+ grows more slowly in time and memory while keeping comparable
// accuracy — the mini-batch generation turns the quadratic candidate
// sweep into localized partitions.
#include <cstdio>

#include "bench/harness.h"
#include "util/table_printer.h"

namespace crossem {
namespace bench {
namespace {

struct SeriesPoint {
  std::string dataset;
  int64_t candidate_pairs;
  MethodResult crossem;
  MethodResult plus;
};

SeriesPoint RunScale(const data::DatasetConfig& dataset_config) {
  HarnessConfig cfg;
  cfg.dataset = dataset_config;
  cfg.pretrain_epochs = 40;  // shared backbone; scalability targets tuning
  Experiment exp(cfg);
  SeriesPoint point;
  point.dataset = exp.dataset().name;
  point.candidate_pairs = static_cast<int64_t>(exp.vertices().size()) *
                          exp.images().size(0);
  point.crossem = exp.RunCrossEm("CrossEM", SoftPromptOptions2(/*epochs=*/3));
  point.plus = exp.RunCrossEm("CrossEM+", PlusOptions(/*epochs=*/3));
  return point;
}

}  // namespace
}  // namespace bench
}  // namespace crossem

int main() {
  using namespace crossem;
  using crossem::bench::SeriesPoint;
  std::vector<SeriesPoint> series;
  series.push_back(bench::RunScale(data::Fb2kLikeConfig(0.45)));
  series.push_back(bench::RunScale(data::Fb6kLikeConfig(0.45)));
  series.push_back(bench::RunScale(data::Fb10kLikeConfig(0.45)));

  std::printf("== Figure 8 — scalability over FB15K-237-IMG subsets\n");
  TablePrinter table({"Dataset", "Pairs", "MRR CrossEM", "MRR CrossEM+",
                      "T/ep CrossEM", "T/ep CrossEM+", "Mem CrossEM",
                      "Mem CrossEM+"});
  for (const SeriesPoint& p : series) {
    table.AddRow({p.dataset, std::to_string(p.candidate_pairs),
                  TablePrinter::Fmt(p.crossem.metrics.mrr, 3),
                  TablePrinter::Fmt(p.plus.metrics.mrr, 3),
                  TablePrinter::Fmt(p.crossem.seconds_per_epoch, 3),
                  TablePrinter::Fmt(p.plus.seconds_per_epoch, 3),
                  TablePrinter::Fmt(p.crossem.peak_mb, 2),
                  TablePrinter::Fmt(p.plus.peak_mb, 2)});
  }
  table.Print();

  // Growth factors (the figure's visual takeaway).
  const auto& first = series.front();
  const auto& last = series.back();
  std::printf(
      "\nGrowth FB2K->FB10K: time x%.1f (CrossEM) vs x%.1f (CrossEM+), "
      "mem x%.1f vs x%.1f\n",
      last.crossem.seconds_per_epoch /
          std::max(first.crossem.seconds_per_epoch, 1e-9),
      last.plus.seconds_per_epoch /
          std::max(first.plus.seconds_per_epoch, 1e-9),
      last.crossem.peak_mb / std::max(first.crossem.peak_mb, 1e-9),
      last.plus.peak_mb / std::max(first.plus.peak_mb, 1e-9));
  return 0;
}
