// Network front-end benchmark, written to BENCH_net.json.
//
// Boots the full serving stack in-process — synthetic CUB-like world,
// frozen encoder, 2-shard flat index behind a SnapshotManager, MatchApp
// admission control, epoll HttpServer on an ephemeral loopback port —
// and drives it with the open-loop Poisson load generator:
//
//   1. nominal  — offered load well inside capacity. The CI gate
//                 (tools/check_bench_regression.py --net) requires zero
//                 5xx responses, zero transport errors, and p99 under
//                 the ceiling here.
//   2. overload — offered load far above capacity. Informational: shows
//                 admission control shedding (429s) instead of latency
//                 collapse; the gate only checks that the server
//                 answered (no transport errors ≈ no hangs/crashes).
//
// Latencies are measured from the *scheduled* Poisson arrival, so
// server-induced queueing is charged to the server (no coordinated
// omission). CI boxes are single-core and noisy — the nominal arm is
// deliberately modest.
//
// A TimeSeriesRecorder samples the metrics registry throughout the run;
// its sample/drop counts are embedded in BENCH_net.json under
// "recorder" (nominal_dropped = ticks lost during the nominal arm — the
// gate fails when that is nonzero), and the full ring dump plus the
// tail-sampled request traces are written to CROSSEM_BENCH_HISTORY_JSON
// / CROSSEM_BENCH_TRACEZ_JSON (defaults: BENCH_net.history.json,
// BENCH_net.tracez.json) for the CI artifact upload.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "clip/clip.h"
#include "data/dataset.h"
#include "net/loadgen.h"
#include "net/match_app.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracez.h"
#include "serve/index.h"
#include "serve/snapshot.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace crossem {
namespace {

struct World {
  data::CrossModalDataset dataset;
  std::unique_ptr<clip::ClipModel> model;
  std::unique_ptr<text::Tokenizer> tokenizer;
  std::unique_ptr<core::CrossEm> matcher;
};

std::unique_ptr<World> BuildWorld() {
  auto w = std::make_unique<World>();
  w->dataset = data::BuildDataset(data::CubLikeConfig(0.4));
  clip::ClipConfig cc;
  cc.vocab_size = w->dataset.vocab.size();
  cc.text_context = 32;
  cc.model_dim = 16;
  cc.text_layers = 1;
  cc.text_heads = 2;
  cc.image_layers = 1;
  cc.image_heads = 2;
  cc.patch_dim = w->dataset.world->config().patch_dim;
  cc.max_patches = 16;
  cc.embed_dim = 12;
  Rng rng(5);
  w->model = std::make_unique<clip::ClipModel>(cc, &rng);
  w->tokenizer =
      std::make_unique<text::Tokenizer>(&w->dataset.vocab, cc.text_context);
  core::CrossEmOptions options;
  options.prompt_mode = core::PromptMode::kHard;
  w->matcher = std::make_unique<core::CrossEm>(
      w->model.get(), &w->dataset.graph, w->tokenizer.get(), options);
  return w;
}

std::unique_ptr<serve::EmbeddingIndex> BuildIndex(const World& w) {
  const std::vector<int64_t> test_rows = w.dataset.TestImageIndices();
  Tensor images = w.dataset.StackImages(test_rows);
  Tensor embeddings = w.matcher->EncodeImages(images);
  std::vector<std::string> ids;
  for (int64_t i = 0; i < embeddings.size(0); ++i) {
    ids.push_back("img" + std::to_string(i));
  }
  auto index = std::make_unique<serve::FlatIndex>();
  if (!index->Add(embeddings, ids).ok()) std::abort();
  index->set_model_fingerprint(w.matcher->EncoderFingerprint());
  return index;
}

void WriteTextFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << body;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crossem

int main(int argc, char** argv) {
  using namespace crossem;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const char* env = std::getenv("CROSSEM_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_net.json";

  auto world = BuildWorld();

  serve::EngineOptions eo;
  eo.shards = 2;
  eo.base.max_wait_micros = 500;  // low-latency batching on one core
  serve::SnapshotManager manager(world->matcher.get(), eo);
  if (auto st = manager.SwapIndex(BuildIndex(*world), "bench"); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  net::MatchAppOptions app_options;
  app_options.admission.max_inflight = 64;
  // The bench measures server capacity, not quota policy: the single
  // bench tenant gets effectively unlimited rate.
  app_options.admission.tenant_rate = 100000.0;
  app_options.admission.tenant_burst = 100000.0;
  // Trace every request so the tracez dump has material; the tracez
  // ring tail-samples what it keeps.
  app_options.trace_all_requests = true;
  net::MatchApp app(&world->dataset.graph, &manager, app_options);

  // Flight recorder alongside the arms: 100ms ticks are coarse enough
  // that even a noisy single-core CI box keeps up — a dropped tick
  // during the nominal arm therefore indicates a real stall and fails
  // the gate (check_bench_regression.py --net-expect-recorder).
  obs::TimeSeriesOptions ts_options;
  ts_options.interval_micros = 100 * 1000;
  obs::TimeSeriesRecorder recorder(&obs::MetricsRegistry::Default(),
                                   ts_options);
  app.set_recorder(&recorder);
  recorder.Start();

  net::HttpServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.workers = 4;
  net::HttpServer server(server_options, [&app](const net::HttpRequest& r) {
    return app.Handle(r);
  });
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d\n", server.port());

  std::vector<std::string> entities;
  for (graph::VertexId v : world->dataset.entities) {
    entities.push_back(world->dataset.graph.VertexLabel(v));
  }

  struct ArmSpec {
    const char* name;
    double qps;
  };
  const std::vector<ArmSpec> specs = {
      {"nominal", quick ? 15.0 : 25.0},
      {"overload", quick ? 80.0 : 150.0},
  };
  std::vector<net::LoadGenReport> arms;
  net::RecorderSummary recorder_summary;
  for (size_t a = 0; a < specs.size(); ++a) {
    net::LoadGenOptions options;
    options.port = server.port();
    options.entities = entities;
    options.qps = specs[a].qps;
    options.duration_micros = quick ? 1200 * 1000 : 2500 * 1000;
    options.connections = 2;
    options.tenant = "bench";
    options.k = 10;
    options.seed = 11 + a;
    options.name = specs[a].name;
    auto report = net::RunLoadGen(options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    const net::LoadGenReport& r = report.value();
    std::printf(
        "arm %s: offered %.1f achieved %.1f qps | sent %lld "
        "transport_errors %lld 200:%lld 206:%lld 429:%lld 5xx:%lld | "
        "p50 %lldus p99 %lldus\n",
        r.name.c_str(), r.offered_qps, r.achieved_qps,
        static_cast<long long>(r.sent),
        static_cast<long long>(r.transport_errors),
        static_cast<long long>(r.status_200),
        static_cast<long long>(r.status_206),
        static_cast<long long>(r.status_429),
        static_cast<long long>(r.status_5xx),
        static_cast<long long>(r.latency_p50_us),
        static_cast<long long>(r.latency_p99_us));
    arms.push_back(r);
    if (std::string(specs[a].name) == "nominal") {
      // Drop count right after the nominal arm: losses during overload
      // (an intentionally saturated box) don't count against the gate.
      recorder_summary.nominal_dropped = recorder.GetStats().dropped;
    }
  }
  server.Stop();

  const obs::TimeSeriesRecorder::Stats ts_stats = recorder.GetStats();
  recorder_summary.samples = ts_stats.samples;
  recorder_summary.dropped = ts_stats.dropped;
  std::printf("recorder: %lld samples, %lld dropped (%lld during nominal)\n",
              static_cast<long long>(recorder_summary.samples),
              static_cast<long long>(recorder_summary.dropped),
              static_cast<long long>(recorder_summary.nominal_dropped));

  const char* history_env = std::getenv("CROSSEM_BENCH_HISTORY_JSON");
  WriteTextFile(
      history_env != nullptr ? history_env : "BENCH_net.history.json",
      recorder.RenderJson());
  const char* tracez_env = std::getenv("CROSSEM_BENCH_TRACEZ_JSON");
  WriteTextFile(tracez_env != nullptr ? tracez_env : "BENCH_net.tracez.json",
                obs::TracezBuffer::Default().RenderJson());
  recorder.Stop();
  manager.Shutdown();

  if (auto st = net::WriteBenchNetJson(path, arms, &recorder_summary);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
