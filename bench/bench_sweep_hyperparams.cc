// Hyper-parameter sensitivity sweep (the paper tunes alpha — the soft
// prompt aggregation weight of Eq. 6 — and beta — the loss mix of
// Eq. 10 — "by doing a grid search... continuously selected from [0, 1]
// with a step size of 0.1"; Sec. V-A). This bench regenerates that
// selection surface at a coarser grid, plus the d-hop radius sensitivity
// of the hard prompt.
#include <cstdio>

#include "bench/harness.h"
#include "util/table_printer.h"

namespace crossem {
namespace bench {
namespace {

void SweepAlpha(Experiment* exp) {
  std::printf("-- alpha sweep (Eq. 6 aggregation weight, soft prompt)\n");
  TablePrinter table({"alpha", "H@1", "H@5", "MRR"});
  for (float alpha : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
    core::CrossEmOptions opt = SoftPromptOptions2(/*epochs=*/4);
    opt.soft.alpha = alpha;
    MethodResult r = exp->RunCrossEm("alpha", opt);
    table.AddRow({TablePrinter::Fmt(alpha, 2),
                  TablePrinter::Fmt(r.metrics.hits_at_1),
                  TablePrinter::Fmt(r.metrics.hits_at_5),
                  TablePrinter::Fmt(r.metrics.mrr, 3)});
  }
  table.Print();
}

void SweepBeta(Experiment* exp) {
  std::printf("-- beta sweep (Eq. 10 loss mix, CrossEM+)\n");
  TablePrinter table({"beta", "H@1", "H@5", "MRR"});
  for (float beta : {0.25f, 0.5f, 0.75f, 0.9f, 1.0f}) {
    core::CrossEmOptions opt = PlusOptions(/*epochs=*/4);
    opt.beta = beta;
    MethodResult r = exp->RunCrossEm("beta", opt);
    table.AddRow({TablePrinter::Fmt(beta, 2),
                  TablePrinter::Fmt(r.metrics.hits_at_1),
                  TablePrinter::Fmt(r.metrics.hits_at_5),
                  TablePrinter::Fmt(r.metrics.mrr, 3)});
  }
  table.Print();
}

void SweepHops(Experiment* exp) {
  std::printf("-- d-hop radius sweep (hard prompt subgraph size)\n");
  TablePrinter table({"hops", "H@1", "H@5", "MRR"});
  for (int64_t hops : {0, 1, 2}) {
    core::CrossEmOptions opt = HardPromptOptions2();
    opt.hard.hops = hops;
    MethodResult r = exp->RunCrossEm("hops", opt);
    table.AddRow({std::to_string(hops),
                  TablePrinter::Fmt(r.metrics.hits_at_1),
                  TablePrinter::Fmt(r.metrics.hits_at_5),
                  TablePrinter::Fmt(r.metrics.mrr, 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace crossem

int main() {
  using namespace crossem;
  bench::HarnessConfig cfg;
  cfg.dataset = data::CubLikeConfig(0.8);
  cfg.name_mention_prob = 0.35f;
  cfg.pretrain_epochs = 40;
  bench::Experiment exp(cfg);
  std::printf("== Hyper-parameter sensitivity on %s\n\n",
              exp.dataset().name.c_str());
  bench::SweepAlpha(&exp);
  std::printf("\n");
  bench::SweepBeta(&exp);
  std::printf("\n");
  bench::SweepHops(&exp);
  return 0;
}
